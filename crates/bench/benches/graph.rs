//! Graph-analytics cost vs population size: CSR build, degree extraction,
//! connected components, assortativity, neighbor means (the §7 pipeline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use steam_graph::{connected_components, degree_assortativity, neighbor_mean, Csr};
use steam_synth::{Generator, SynthConfig};

fn world(n_users: usize) -> (usize, Vec<(u32, u32)>) {
    let mut cfg = SynthConfig::small(77);
    cfg.n_users = n_users;
    cfg.n_groups = (n_users / 33).max(5);
    let snap = Generator::new(cfg).generate();
    let edges: Vec<(u32, u32)> = snap.friendships.iter().map(|e| (e.a, e.b)).collect();
    (snap.n_users(), edges)
}

fn bench_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph");
    group.sample_size(10);
    for n in [10_000usize, 50_000] {
        let (n_nodes, edges) = world(n);
        group.bench_with_input(BenchmarkId::new("csr_build", n), &edges, |b, e| {
            b.iter(|| black_box(Csr::from_edges(n_nodes, e.iter().copied())))
        });
        let g = Csr::from_edges(n_nodes, edges.iter().copied());
        group.bench_with_input(BenchmarkId::new("components", n), &g, |b, g| {
            b.iter(|| black_box(connected_components(g)))
        });
        group.bench_with_input(BenchmarkId::new("assortativity", n), &g, |b, g| {
            b.iter(|| black_box(degree_assortativity(g)))
        });
        let attr: Vec<f64> = (0..n_nodes).map(|i| i as f64).collect();
        group.bench_with_input(BenchmarkId::new("neighbor_mean", n), &g, |b, g| {
            b.iter(|| black_box(neighbor_mean(g, &attr)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
