//! Generation throughput: users/second end-to-end, plus the per-stage cost
//! split and the codec round-trip (how fast snapshots persist).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use steam_model::codec::{decode_snapshot, encode_snapshot};
use steam_synth::{Generator, SynthConfig};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    group.sample_size(10);
    for n in [5_000usize, 20_000, 60_000] {
        let mut cfg = SynthConfig::small(3);
        cfg.n_users = n;
        cfg.n_groups = (n / 33).max(5);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("snapshot", n), &cfg, |b, cfg| {
            b.iter(|| black_box(Generator::new(cfg.clone()).generate()))
        });
        group.bench_with_input(BenchmarkId::new("full_world", n), &cfg, |b, cfg| {
            b.iter(|| black_box(Generator::new(cfg.clone()).generate_world()))
        });
    }
    group.finish();
}

fn bench_archetype_mixture(c: &mut Criterion) {
    // Ablation: how much do the collector/idle-farmer archetypes cost?
    // (Collectors own thousands of games each.)
    let mut group = c.benchmark_group("archetypes");
    group.sample_size(10);
    let n = 20_000usize;
    for (label, collector_rate) in [("baseline", 1.5e-4f64), ("no_collectors", 0.0), ("heavy_collectors", 2e-3)] {
        let mut cfg = SynthConfig::small(5);
        cfg.n_users = n;
        cfg.n_groups = 600;
        cfg.collector_rate = collector_rate;
        group.bench_with_input(BenchmarkId::new(label, n), &cfg, |b, cfg| {
            b.iter(|| black_box(Generator::new(cfg.clone()).generate()))
        });
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    group.sample_size(10);
    let mut cfg = SynthConfig::small(9);
    cfg.n_users = 20_000;
    cfg.n_groups = 600;
    let snap = Generator::new(cfg).generate();
    let encoded = encode_snapshot(&snap);
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode", |b| b.iter(|| black_box(encode_snapshot(&snap))));
    group.bench_function("decode", |b| {
        b.iter(|| black_box(decode_snapshot(encoded.clone()).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_generation, bench_archetype_mixture, bench_codec);
criterion_main!(benches);
