//! Per-experiment regeneration cost: how long each of the paper's tables and
//! figures takes to compute from a snapshot (the analysis side of the
//! pipeline; the rows themselves are printed by the `repro` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::OnceLock;
use steam_analysis::{render, Ctx, Experiment, ReportInput};
use steam_synth::{Generator, SynthConfig, World};

static WORLD: OnceLock<World> = OnceLock::new();

fn world() -> &'static World {
    WORLD.get_or_init(|| {
        let mut cfg = SynthConfig::small(2016);
        cfg.n_users = 20_000;
        cfg.n_groups = 600;
        Generator::new(cfg).generate_world()
    })
}

fn bench_context_build(c: &mut Criterion) {
    let w = world();
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("context_build", |b| {
        b.iter(|| black_box(Ctx::new(&w.snapshot)))
    });
    group.finish();
}

fn bench_each_experiment(c: &mut Criterion) {
    let w = world();
    let ctx = Ctx::new(&w.snapshot);
    let second = Ctx::new(&w.second_snapshot);
    let input = ReportInput { ctx: &ctx, second: Some(&second), panel: Some(&w.panel) };

    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    for e in Experiment::ALL {
        // Table 4 runs the full fitting pipeline over 17 distributions; it
        // gets its own timing below with fewer samples.
        if e == Experiment::Table4 {
            continue;
        }
        group.bench_with_input(BenchmarkId::new("render", e.name()), &e, |b, &e| {
            b.iter(|| black_box(render(&input, e)))
        });
    }
    group.finish();

    let mut slow = c.benchmark_group("experiments_slow");
    slow.sample_size(10);
    slow.bench_function("render/table4", |b| {
        b.iter(|| black_box(render(&input, Experiment::Table4)))
    });
    slow.finish();
}

criterion_group!(benches, bench_context_build, bench_each_experiment);
criterion_main!(benches);
