//! API/crawl throughput benches — why the paper's phase 1 took weeks and
//! phase 2 took six months:
//!
//! * batch-100 profile endpoint vs single-profile fetches;
//! * full crawl with and without self-throttling;
//! * raw request/response round-trip cost of the HTTP substrate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use steam_api::{serve, Crawler, CrawlerConfig, RateLimit};
use steam_model::{Snapshot, SteamId};
use steam_net::HttpClient;
use steam_synth::{Generator, SynthConfig};

fn tiny_snapshot(n_users: usize) -> Arc<Snapshot> {
    let mut cfg = SynthConfig::small(21);
    cfg.n_users = n_users;
    cfg.n_products = 150;
    cfg.n_groups = 20;
    Arc::new(Generator::new(cfg).generate())
}

fn bench_endpoints(c: &mut Criterion) {
    let snap = tiny_snapshot(2_000);
    let (server, _service) =
        serve(Arc::clone(&snap), "127.0.0.1:0", 4, RateLimit::default()).unwrap();
    let addr = server.addr();

    let mut group = c.benchmark_group("endpoints");
    group.sample_size(30);

    // Batch of 100 profiles per request (phase 1's trick).
    let ids: Vec<String> =
        (0..100u64).map(|i| snap.accounts[i as usize].id.to_string()).collect();
    let batch_target =
        format!("/ISteamUser/GetPlayerSummaries/v2?steamids={}", ids.join(","));
    group.throughput(Throughput::Elements(100));
    group.bench_function("profiles_batch100", |b| {
        let mut client = HttpClient::new(addr);
        b.iter(|| black_box(client.get(&batch_target).unwrap()))
    });

    // One profile per request.
    let one_target = format!(
        "/ISteamUser/GetPlayerSummaries/v2?steamids={}",
        snap.accounts[0].id
    );
    group.throughput(Throughput::Elements(1));
    group.bench_function("profiles_single", |b| {
        let mut client = HttpClient::new(addr);
        b.iter(|| black_box(client.get(&one_target).unwrap()))
    });

    // The phase-2 per-user endpoints.
    let id: SteamId = snap.accounts[0].id;
    for (label, target) in [
        ("friend_list", format!("/ISteamUser/GetFriendList/v1?steamid={id}")),
        ("owned_games", format!("/IPlayerService/GetOwnedGames/v1?steamid={id}")),
        ("group_list", format!("/ISteamUser/GetUserGroupList/v1?steamid={id}")),
    ] {
        group.throughput(Throughput::Elements(1));
        group.bench_function(label, |b| {
            let mut client = HttpClient::new(addr);
            b.iter(|| black_box(client.get(&target).unwrap()))
        });
    }
    group.finish();
}

fn bench_crawl(c: &mut Criterion) {
    let snap = tiny_snapshot(400);
    let (server, _service) =
        serve(Arc::clone(&snap), "127.0.0.1:0", 4, RateLimit::default()).unwrap();
    let addr = server.addr();

    let mut group = c.benchmark_group("crawl");
    group.sample_size(10);
    group.throughput(Throughput::Elements(snap.n_users() as u64));

    group.bench_function("unthrottled", |b| {
        b.iter(|| {
            let config =
                CrawlerConfig { empty_batches_to_stop: 2, ..CrawlerConfig::default() };
            let mut crawler = Crawler::new(addr, config);
            black_box(crawler.crawl(snap.collected_at).unwrap())
        })
    });
    group.bench_function("throttled_85pct_of_2k_rps", |b| {
        b.iter(|| {
            let config = CrawlerConfig {
                empty_batches_to_stop: 2,
                self_throttle_rps: Some(2_000.0 * 0.85),
                ..CrawlerConfig::default()
            };
            let mut crawler = Crawler::new(addr, config);
            black_box(crawler.crawl(snap.collected_at).unwrap())
        })
    });
    for workers in [2usize, 4, 8] {
        group.bench_function(format!("parallel_{workers}_workers"), |b| {
            b.iter(|| {
                let config = CrawlerConfig {
                    empty_batches_to_stop: 2,
                    workers,
                    ..CrawlerConfig::default()
                };
                let mut crawler = Crawler::new(addr, config);
                black_box(crawler.crawl(snap.collected_at).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_endpoints, bench_crawl);
criterion_main!(benches);
