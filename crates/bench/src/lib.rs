//! Criterion benches and the reproduction harness live in benches/ and src/bin/.
