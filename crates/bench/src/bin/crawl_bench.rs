//! End-to-end serve→crawl throughput benchmark: runs the API server and the
//! crawler in-process and reports requests/sec plus p50/p99 fetch latency,
//! establishing the BENCH trajectory for the serving fast path.
//!
//! Three runs over the same synthetic snapshot:
//!
//! * `baseline` — wire cache off, one private connection per fetcher (the
//!   pre-fast-path configuration);
//! * `cold` — cache on but empty, crawler on a shared connection pool;
//! * `warm` — a second crawl against the *same* server, so every cacheable
//!   body is already serialized (a crawl fetches each body once, so only a
//!   re-crawl shows the cache at full effect).
//!
//! The crawled snapshot must be byte-identical across all three — the fast
//! path is not allowed to change a single wire byte.
//!
//! With `--trace`, two extra crawls run against a fresh uncached server —
//! one with span recording disabled, one with it on (the default) — and the
//! report gains a `trace_overhead` object with the req/s delta. The traced
//! and untraced snapshots must also be byte-identical: tracing is not
//! allowed to change the crawl either.
//!
//! ```text
//! cargo run --release -p steam-bench --bin crawl_bench
//! cargo run --release -p steam-bench --bin crawl_bench -- --users 600 --workers 8 --out BENCH_crawl.json
//! ```

use std::sync::Arc;
use std::time::Instant;

use steam_api::service::{serve_service, ApiService, RateLimit};
use steam_api::{Crawler, CrawlerConfig};
use steam_model::{codec, Snapshot};
use steam_net::Json;
use steam_synth::{Generator, SynthConfig};

struct Run {
    name: &'static str,
    requests: u64,
    elapsed_secs: f64,
    requests_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
}

impl Run {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.to_string())),
            ("requests", Json::Num(self.requests as f64)),
            ("elapsed_secs", Json::Num(self.elapsed_secs)),
            ("requests_per_sec", Json::Num(self.requests_per_sec)),
            ("p50_ms", Json::Num(self.p50_ms)),
            ("p99_ms", Json::Num(self.p99_ms)),
        ])
    }
}

fn crawl_once(
    name: &'static str,
    addr: std::net::SocketAddr,
    workers: usize,
    pooled: bool,
    trace: bool,
    original: &Snapshot,
) -> (Snapshot, Run) {
    let config = CrawlerConfig {
        empty_batches_to_stop: 2,
        workers,
        pool_size: if pooled { Some(workers) } else { None },
        trace,
        ..CrawlerConfig::default()
    };
    let mut crawler = Crawler::new(addr, config);
    let progress = crawler.progress();
    let start = Instant::now();
    let crawled = crawler.crawl(original.collected_at).expect("crawl failed");
    let elapsed = start.elapsed().as_secs_f64();
    let stats = crawler.stats();
    // request_latency records microseconds.
    let p50 = progress.request_latency().quantile(0.50) / 1000.0;
    let p99 = progress.request_latency().quantile(0.99) / 1000.0;
    let run = Run {
        name,
        requests: stats.requests,
        elapsed_secs: elapsed,
        requests_per_sec: stats.requests as f64 / elapsed.max(1e-9),
        p50_ms: p50,
        p99_ms: p99,
    };
    eprintln!(
        "# {name:<8} {:>7} reqs in {:>6.2}s = {:>9.0} req/s  p50 {:.3}ms  p99 {:.3}ms",
        run.requests, run.elapsed_secs, run.requests_per_sec, run.p50_ms, run.p99_ms
    );
    (crawled, run)
}

fn arg(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn main() {
    let users: usize = arg("--users").and_then(|s| s.parse().ok()).unwrap_or(300);
    let workers: usize = arg("--workers").and_then(|s| s.parse().ok()).unwrap_or(4);
    let out = arg("--out").unwrap_or_else(|| "BENCH_crawl.json".into());
    let seed: u64 = arg("--seed").and_then(|s| s.parse().ok()).unwrap_or(2016);
    let trace = std::env::args().any(|a| a == "--trace");

    let mut cfg = SynthConfig::small(seed);
    cfg.n_users = users;
    cfg.n_products = (users / 3).max(50);
    cfg.n_groups = (users / 12).max(10);
    eprintln!("# generating {users} users (seed {seed})...");
    let original = Arc::new(Generator::new(cfg).generate());

    // The server needs a worker per concurrent client connection (each
    // worker owns its connection until close), plus one for the crawler's
    // main fetcher.
    let server_workers = workers + 1;

    // Baseline: cache off, no pool — the pre-fast-path serve→crawl loop.
    let baseline_service =
        ApiService::new(Arc::clone(&original), RateLimit::default()).without_cache();
    let (baseline_server, _svc) =
        serve_service(baseline_service, "127.0.0.1:0", server_workers).expect("bind");
    let (baseline_snap, baseline) =
        crawl_once("baseline", baseline_server.addr(), workers, false, true, &original);
    drop(baseline_server);

    // Cold + warm share one cached server: the warm crawl hits what the
    // cold one populated.
    let cached_service = ApiService::new(Arc::clone(&original), RateLimit::default());
    let (cached_server, service) =
        serve_service(cached_service, "127.0.0.1:0", server_workers).expect("bind");
    let (cold_snap, cold) =
        crawl_once("cold", cached_server.addr(), workers, true, true, &original);
    let (warm_snap, warm) =
        crawl_once("warm", cached_server.addr(), workers, true, true, &original);
    let cache = service.cache().expect("cached service");
    let (cache_hits, cache_misses) = (cache.hits(), cache.misses());
    drop(cached_server);

    // The fast path must not change a single crawled byte.
    let baseline_bytes = codec::encode_snapshot(&baseline_snap);
    assert_eq!(
        baseline_bytes,
        codec::encode_snapshot(&cold_snap),
        "cold cached crawl diverged from baseline"
    );
    assert_eq!(
        baseline_bytes,
        codec::encode_snapshot(&warm_snap),
        "warm cached crawl diverged from baseline"
    );
    eprintln!("# snapshots byte-identical across baseline/cold/warm");

    // Tracing overhead: untraced vs traced crawl of the same uncached
    // server, so the only variable is span minting + recording.
    let mut trace_overhead = None;
    if trace {
        let service =
            ApiService::new(Arc::clone(&original), RateLimit::default()).without_cache();
        let (server, _svc) =
            serve_service(service, "127.0.0.1:0", server_workers).expect("bind");
        let (off_snap, off) =
            crawl_once("untraced", server.addr(), workers, false, false, &original);
        let (on_snap, on) =
            crawl_once("traced", server.addr(), workers, false, true, &original);
        assert_eq!(
            codec::encode_snapshot(&off_snap),
            codec::encode_snapshot(&on_snap),
            "tracing changed the crawled bytes"
        );
        let overhead_pct =
            (1.0 - on.requests_per_sec / off.requests_per_sec.max(1e-9)) * 100.0;
        eprintln!(
            "# tracing overhead: {:.0} -> {:.0} req/s ({overhead_pct:+.2}%)",
            off.requests_per_sec, on.requests_per_sec
        );
        trace_overhead = Some(Json::obj([
            ("requests_per_sec_untraced", Json::Num(off.requests_per_sec)),
            ("requests_per_sec_traced", Json::Num(on.requests_per_sec)),
            ("p99_ms_untraced", Json::Num(off.p99_ms)),
            ("p99_ms_traced", Json::Num(on.p99_ms)),
            ("overhead_pct", Json::Num(overhead_pct)),
            ("snapshots_identical", Json::Bool(true)),
        ]));
    }

    let mut report_fields = vec![
        ("bench", Json::Str("crawl".into())),
        ("users", Json::Num(users as f64)),
        ("workers", Json::Num(workers as f64)),
        ("seed", Json::Num(seed as f64)),
        (
            "runs",
            Json::Arr(vec![baseline.to_json(), cold.to_json(), warm.to_json()]),
        ),
        (
            "cache",
            Json::obj([
                ("hits", Json::Num(cache_hits as f64)),
                ("misses", Json::Num(cache_misses as f64)),
            ]),
        ),
        (
            "speedup_warm_vs_baseline",
            Json::Num(warm.requests_per_sec / baseline.requests_per_sec.max(1e-9)),
        ),
        ("snapshots_identical", Json::Bool(true)),
    ];
    if let Some(overhead) = trace_overhead {
        report_fields.push(("trace_overhead", overhead));
    }
    let report = Json::obj(report_fields);
    let text = report.to_text();
    std::fs::write(&out, &text).expect("write BENCH_crawl.json");
    println!("{text}");
    eprintln!("# wrote {out}");
}
