//! Routed vs direct serving benchmark: the price of the scatter-gather hop.
//!
//! Builds one world, serves it two ways — a single unsharded process, and
//! an `N`-shard fleet behind the scatter-gather router — and drives the
//! same closed-loop request mix through both. The mix deliberately includes
//! multi-ID `GetPlayerSummaries` batches that straddle every shard, so the
//! routed numbers pay for the full split → fan-out → merge path, not just
//! single-shard proxying.
//!
//! Before measuring, every probe target is fetched raw from both front
//! doors and compared byte-for-byte: the router is not allowed to change a
//! single wire byte, including batch responses merged across shards.
//!
//! ```text
//! cargo run --release -p steam-bench --bin shard_bench
//! cargo run --release -p steam-bench --bin shard_bench -- \
//!     --users 400 --shards 4 --threads 4 --requests 4000 --out BENCH_shard.json
//! ```

use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use steam_api::service::{serve_service_config, ApiService, RateLimit};
use steam_api::{
    serve_router_config, serve_shard_config, split_snapshot, RouterConfig, RouterService,
    ShardService,
};
use steam_model::Snapshot;
use steam_net::http::{read_response, write_request, Request};
use steam_net::{Json, ServerConfig};
use steam_synth::{Generator, SynthConfig};

fn arg(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

/// Deterministic splitmix64 — the target mix must not depend on platform RNG.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The request-target universe: batch summaries spanning shards, single-ID
/// lookups, group pages, and catalog hits.
struct TargetMix {
    targets: Vec<String>,
}

impl TargetMix {
    fn new(snapshot: &Snapshot, seed: u64) -> Self {
        let ids: Vec<String> =
            snapshot.accounts.iter().map(|a| a.id.to_string()).collect();
        let mut targets = Vec::new();
        // Cross-shard batches: 10 consecutive accounts cover every residue
        // class of any small shard count.
        for k in 0..8u64 {
            let start = (splitmix64(seed ^ k) as usize) % ids.len();
            let batch: Vec<&str> = (0..10.min(ids.len()))
                .map(|j| ids[(start + j) % ids.len()].as_str())
                .collect();
            targets.push(format!(
                "/ISteamUser/GetPlayerSummaries/v2?steamids={}",
                batch.join(",")
            ));
        }
        for (k, id) in ids.iter().enumerate().take(32) {
            targets.push(match k % 3 {
                0 => format!("/ISteamUser/GetFriendList/v1?steamid={id}"),
                1 => format!("/IPlayerService/GetOwnedGames/v1?steamid={id}"),
                _ => format!("/ISteamUser/GetUserGroupList/v1?steamid={id}"),
            });
        }
        for g in snapshot.groups.iter().take(8) {
            targets.push(format!("/community/group/{}", g.id.0));
        }
        for g in snapshot.catalog.iter().take(8) {
            targets.push(format!("/api/appdetails?appids={}", g.app_id.0));
        }
        targets.push("/ISteamApps/GetAppList/v2".into());
        TargetMix { targets }
    }

    fn pick(&self, n: u64) -> &str {
        &self.targets[(splitmix64(n) as usize) % self.targets.len()]
    }
}

struct BenchConn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

fn connect(addr: SocketAddr) -> BenchConn {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.set_write_timeout(Some(Duration::from_secs(30))).unwrap();
    let writer = stream.try_clone().expect("clone");
    BenchConn { writer, reader: BufReader::new(stream) }
}

fn exchange(conn: &mut BenchConn, target: &str) -> u16 {
    write_request(&mut conn.writer, &Request::get(target)).expect("write request");
    read_response(&mut conn.reader).expect("read response").status
}

/// One request with `Connection: close`, returning the raw response bytes.
fn fetch_raw(addr: SocketAddr, target: &str) -> Vec<u8> {
    use std::io::Read;
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut req = Request::get(target);
    req.headers.push(("Connection".into(), "close".into()));
    write_request(&mut writer, &req).expect("write");
    let mut bytes = Vec::new();
    let mut reader = stream;
    reader.read_to_end(&mut bytes).expect("read");
    bytes
}

fn percentile(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx] as f64 / 1000.0
}

struct RunResult {
    label: &'static str,
    requests: u64,
    errors: u64,
    elapsed_secs: f64,
    requests_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
}

impl RunResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::Str(self.label.to_string())),
            ("requests", Json::Num(self.requests as f64)),
            ("errors", Json::Num(self.errors as f64)),
            ("elapsed_secs", Json::Num(self.elapsed_secs)),
            ("requests_per_sec", Json::Num(self.requests_per_sec)),
            ("p50_ms", Json::Num(self.p50_ms)),
            ("p99_ms", Json::Num(self.p99_ms)),
        ])
    }
}

/// Closed-loop load: each thread owns one keep-alive connection and sends
/// the next request only after the previous response.
fn run_load(
    label: &'static str,
    addr: SocketAddr,
    threads: usize,
    requests_per_thread: u64,
    mix: &Arc<TargetMix>,
) -> RunResult {
    let started = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let mix = Arc::clone(mix);
            std::thread::spawn(move || {
                let mut conn = connect(addr);
                // Warmup: one pass to open sockets and warm caches.
                for w in 0..8u64 {
                    exchange(&mut conn, mix.pick(w.wrapping_mul(7)));
                }
                let mut latencies_us = Vec::with_capacity(requests_per_thread as usize);
                let mut errors = 0u64;
                for k in 0..requests_per_thread {
                    let n = ((t as u64) << 32) | k;
                    let t0 = Instant::now();
                    let status = exchange(&mut conn, mix.pick(n));
                    latencies_us.push(t0.elapsed().as_micros() as u64);
                    if status != 200 {
                        errors += 1;
                    }
                }
                (latencies_us, errors)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut errors = 0u64;
    for h in handles {
        let (lat, err) = h.join().expect("load thread");
        latencies.extend(lat);
        errors += err;
    }
    let elapsed = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let requests = latencies.len() as u64;
    let result = RunResult {
        label,
        requests,
        errors,
        elapsed_secs: elapsed,
        requests_per_sec: requests as f64 / elapsed.max(1e-9),
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
    };
    eprintln!(
        "# [{label}] {requests} reqs = {:.0} req/s  p50 {:.3}ms  p99 {:.3}ms  ({errors} errors)",
        result.requests_per_sec, result.p50_ms, result.p99_ms
    );
    result
}

fn main() {
    let users: usize = arg("--users").and_then(|s| s.parse().ok()).unwrap_or(400);
    let shards: usize = arg("--shards").and_then(|s| s.parse().ok()).unwrap_or(4);
    let threads: usize = arg("--threads").and_then(|s| s.parse().ok()).unwrap_or(4);
    let requests_per_thread: u64 =
        arg("--requests").and_then(|s| s.parse().ok()).unwrap_or(2_000);
    let seed: u64 = arg("--seed").and_then(|s| s.parse().ok()).unwrap_or(2016);
    let out = arg("--out").unwrap_or_else(|| "BENCH_shard.json".into());

    let mut cfg = SynthConfig::small(seed);
    cfg.n_users = users;
    cfg.n_products = (users / 3).max(50);
    cfg.n_groups = (users / 12).max(10);
    eprintln!("# generating {users} users (seed {seed})...");
    let snapshot = Arc::new(Generator::new(cfg).generate());
    let mix = Arc::new(TargetMix::new(&snapshot, seed));

    // The bench measures the serving paths, not the rate limiter.
    let limits = RateLimit { per_key_rps: 1e12, burst: 1e12 };
    let config = ServerConfig { workers: 8, ..Default::default() };

    let (direct, _svc) = serve_service_config(
        ApiService::new(Arc::clone(&snapshot), limits),
        "127.0.0.1:0",
        config,
        None,
        None,
    )
    .expect("bind direct");

    eprintln!("# splitting {shards} ways and binding the fleet...");
    let mut shard_servers = Vec::with_capacity(shards);
    let mut shard_addrs = Vec::with_capacity(shards);
    for store in split_snapshot(&snapshot, shards) {
        let (server, _s) = serve_shard_config(
            ShardService::new(store, limits),
            "127.0.0.1:0",
            config,
            None,
            None,
        )
        .expect("bind shard");
        shard_addrs.push(server.addr());
        shard_servers.push(server);
    }
    let (router, _r) = serve_router_config(
        RouterService::new(shard_addrs, RouterConfig::default()),
        "127.0.0.1:0",
        config,
        None,
    )
    .expect("bind router");

    // Byte-identity: every distinct target in the mix, raw, both ways.
    for target in mix.targets.iter() {
        let a = fetch_raw(direct.addr(), target);
        let b = fetch_raw(router.addr(), target);
        assert_eq!(a, b, "router and direct server disagree on {target}");
    }
    eprintln!(
        "# {} probe responses byte-identical across direct/routed",
        mix.targets.len()
    );

    let direct_run = run_load("direct", direct.addr(), threads, requests_per_thread, &mix);
    let routed_run = run_load("routed", router.addr(), threads, requests_per_thread, &mix);
    let overhead_pct =
        (1.0 - routed_run.requests_per_sec / direct_run.requests_per_sec.max(1e-9)) * 100.0;
    eprintln!(
        "# routing overhead: {:.0} -> {:.0} req/s ({overhead_pct:+.2}%)",
        direct_run.requests_per_sec, routed_run.requests_per_sec
    );

    let report = Json::obj([
        ("bench", Json::Str("shard".into())),
        ("users", Json::Num(users as f64)),
        ("shards", Json::Num(shards as f64)),
        ("threads", Json::Num(threads as f64)),
        ("requests_per_thread", Json::Num(requests_per_thread as f64)),
        ("seed", Json::Num(seed as f64)),
        ("responses_identical", Json::Bool(true)),
        ("routing_overhead_pct", Json::Num(overhead_pct)),
        (
            "runs",
            Json::Arr(vec![direct_run.to_json(), routed_run.to_json()]),
        ),
    ]);
    let text = report.to_text();
    std::fs::write(&out, &text).expect("write BENCH_shard.json");
    println!("{text}");
    eprintln!("# wrote {out}");
}
