//! Open-loop load generator for the API server: measures what the serving
//! path can sustain with a large fleet of keep-alive connections, the
//! regime the epoll reactor exists for.
//!
//! Unlike `crawl_bench` (closed-loop: the crawler only sends the next
//! request after the previous response), this bench schedules request
//! *arrivals* at a fixed rate and measures each latency from the request's
//! **scheduled** arrival time, not from when the generator got around to
//! sending it — the standard coordinated-omission correction, so a server
//! that stalls shows the stall in its tail percentiles instead of silently
//! slowing the generator down.
//!
//! Per mode measured:
//!
//! * `epoll` — one reactor thread holding every connection; the bench opens
//!   10k+ concurrent keep-alive connections by default and round-robins the
//!   arrival schedule across them.
//! * `threaded` — the blocking worker pool. A worker owns a connection for
//!   its whole lifetime, so concurrency is **capped at the worker count**;
//!   the bench caps the threaded fleet accordingly (and says so in the
//!   output) rather than deadlocking on connections no worker will ever
//!   adopt.
//!
//! Both servers serve the same in-memory snapshot; before measuring, the
//! bench fetches a probe set from each and asserts the responses are
//! byte-identical — the reactor is not allowed to change a single wire
//! byte. The target mix is deliberately skewed (a small hot set takes most
//! of the traffic, echoing the per-game popularity skew of De Luisa et al.)
//! so the wire cache and any future hot-key path see representative load.
//!
//! With `--trace`, each mode is measured twice over the same server —
//! plain, then with a fresh `X-Steam-Trace` context on every request (the
//! worst case for the flight recorder: every response is a distinct traced
//! span) — and the report gains a `trace_overhead` section comparing the
//! two. The `runs` section always holds the untraced numbers, so existing
//! consumers see the same shape either way.
//!
//! ```text
//! cargo run --release -p steam-bench --bin serve_bench
//! cargo run --release -p steam-bench --bin serve_bench -- \
//!     --conns 10000 --rate 20000 --duration-secs 10 --out BENCH_serve.json
//! ```

use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use steam_api::service::{serve_service_config, ApiService, RateLimit};
use steam_model::Snapshot;
use steam_net::http::{read_response, write_request, Request};
use steam_net::{Json, ServerConfig, ServerMode};
use steam_obs::{SpanId, TraceContext, TraceId, TRACE_HEADER};
use steam_synth::{Generator, SynthConfig};

fn arg(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn has(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Deterministic splitmix64 — the target mix must not depend on platform RNG.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The request-target universe: a small hot set that takes most of the
/// traffic plus a long tail of per-user lookups.
struct TargetMix {
    hot: Vec<String>,
    tail: Vec<String>,
    seed: u64,
}

impl TargetMix {
    fn new(snapshot: &Snapshot, seed: u64) -> Self {
        let ids: Vec<String> =
            snapshot.accounts.iter().map(|a| a.id.to_string()).collect();
        let mut hot = vec!["/ISteamApps/GetAppList/v2".to_string()];
        for id in ids.iter().take(3) {
            hot.push(format!("/ISteamUser/GetPlayerSummaries/v2?steamids={id}"));
        }
        let tail: Vec<String> = ids
            .iter()
            .map(|id| format!("/ISteamUser/GetFriendList/v1?steamid={id}"))
            .collect();
        TargetMix { hot, tail, seed }
    }

    /// Target for the `n`-th request: ~80% hot set, ~20% tail.
    fn pick(&self, n: u64) -> &str {
        let r = splitmix64(self.seed ^ n);
        if r % 10 < 8 || self.tail.is_empty() {
            &self.hot[(r >> 8) as usize % self.hot.len()]
        } else {
            &self.tail[(r >> 8) as usize % self.tail.len()]
        }
    }

    /// A fixed probe set covering both pools, for byte-identity checks.
    fn probes(&self) -> Vec<&str> {
        let mut p: Vec<&str> = self.hot.iter().map(String::as_str).collect();
        p.extend(self.tail.iter().take(8).map(String::as_str));
        p
    }
}

/// One keep-alive bench connection.
struct BenchConn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

fn connect(addr: SocketAddr) -> BenchConn {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.set_write_timeout(Some(Duration::from_secs(30))).unwrap();
    let writer = stream.try_clone().expect("clone");
    BenchConn { writer, reader: BufReader::new(stream) }
}

/// One keep-alive exchange. With `trace = Some(n)` the request carries a
/// deterministic `X-Steam-Trace` context derived from `n` — a fresh trace
/// and span id per request, so the server records every response.
fn exchange(conn: &mut BenchConn, target: &str, trace: Option<u64>) -> u16 {
    let mut req = Request::get(target);
    if let Some(n) = trace {
        let ctx = TraceContext {
            trace: TraceId(splitmix64(n ^ 0x7472_6163_6562_6e63) | 1),
            span: SpanId(splitmix64(n ^ 0x7370_616e_6265_6e63) | 1),
        };
        req.headers.push((TRACE_HEADER.into(), ctx.header_value()));
    }
    write_request(&mut conn.writer, &req).expect("write request");
    read_response(&mut conn.reader).expect("read response").status
}

/// One request with `Connection: close`, returning the raw response bytes.
fn fetch_raw(addr: SocketAddr, target: &str) -> Vec<u8> {
    use std::io::Read;
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut req = Request::get(target);
    req.headers.push(("Connection".into(), "close".into()));
    write_request(&mut writer, &req).expect("write");
    let mut bytes = Vec::new();
    let mut reader = stream;
    reader.read_to_end(&mut bytes).expect("read");
    bytes
}

struct RunResult {
    mode: &'static str,
    conns: usize,
    requests: u64,
    errors: u64,
    elapsed_secs: f64,
    requests_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
}

impl RunResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("mode", Json::Str(self.mode.to_string())),
            ("conns", Json::Num(self.conns as f64)),
            ("requests", Json::Num(self.requests as f64)),
            ("errors", Json::Num(self.errors as f64)),
            ("elapsed_secs", Json::Num(self.elapsed_secs)),
            ("requests_per_sec", Json::Num(self.requests_per_sec)),
            ("p50_ms", Json::Num(self.p50_ms)),
            ("p99_ms", Json::Num(self.p99_ms)),
            ("p999_ms", Json::Num(self.p999_ms)),
        ])
    }
}

fn percentile(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx] as f64 / 1000.0
}

/// Runs the open-loop load against one server.
#[allow(clippy::too_many_arguments)]
fn run_mode(
    mode: &'static str,
    addr: SocketAddr,
    conns: usize,
    rate: f64,
    duration: Duration,
    threads: usize,
    mix: Arc<TargetMix>,
    warmup_per_conn: u64,
    traced: bool,
) -> RunResult {
    let threads = threads.min(conns).max(1);
    eprintln!("# [{mode}] opening {conns} keep-alive connections ({threads} threads)...");
    let started = Instant::now();
    // Each load thread owns its slice of the fleet; nothing is shared, so
    // the measured path has no generator-side locks.
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let mix = Arc::clone(&mix);
            let my_conns = (conns + threads - 1 - t) / threads; // spread remainder
            let per_thread_rate = rate / threads as f64;
            std::thread::spawn(move || {
                let mut fleet: Vec<BenchConn> =
                    (0..my_conns).map(|_| connect(addr)).collect();
                // Closed-loop warmup: every connection completes a few
                // exchanges, so sockets, caches and metric paths are warm
                // before the clock starts.
                let mut warm_n = (t as u64) << 32;
                for _ in 0..warmup_per_conn {
                    for conn in fleet.iter_mut() {
                        exchange(conn, mix.pick(warm_n), traced.then_some(warm_n));
                        warm_n += 1;
                    }
                }
                // Open-loop measured run: arrivals on a fixed schedule,
                // latency measured from the *scheduled* time.
                let interval = Duration::from_secs_f64(1.0 / per_thread_rate);
                let total = (per_thread_rate * duration.as_secs_f64()) as u64;
                let mut latencies_us = Vec::with_capacity(total as usize);
                let mut errors = 0u64;
                let start = Instant::now();
                for k in 0..total {
                    let scheduled = interval.mul_f64(k as f64);
                    let now = start.elapsed();
                    if now < scheduled {
                        std::thread::sleep(scheduled - now);
                    }
                    let slot = (k as usize) % fleet.len();
                    let conn = &mut fleet[slot];
                    let n = ((t as u64) << 32) | k;
                    let status = exchange(conn, mix.pick(n), traced.then_some(n));
                    if status != 200 {
                        errors += 1;
                    }
                    let done = start.elapsed();
                    latencies_us.push((done - scheduled).as_micros() as u64);
                }
                (latencies_us, errors, start.elapsed())
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut errors = 0u64;
    // Achieved throughput uses the slowest thread's measured window (the
    // schedule may overrun when the offered rate exceeds capacity).
    let mut measured = Duration::ZERO;
    for h in handles {
        let (lat, err, thread_elapsed) = h.join().expect("load thread");
        latencies.extend(lat);
        errors += err;
        measured = measured.max(thread_elapsed);
    }
    let elapsed = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let requests = latencies.len() as u64;
    let result = RunResult {
        mode,
        conns,
        requests,
        errors,
        elapsed_secs: elapsed,
        requests_per_sec: requests as f64 / measured.as_secs_f64().max(1e-9),
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        p999_ms: percentile(&latencies, 0.999),
    };
    eprintln!(
        "# [{mode}] {requests} reqs over {conns} conns = {:.0} req/s  p50 {:.3}ms  p99 {:.3}ms  p999 {:.3}ms  ({errors} errors)",
        result.requests_per_sec, result.p50_ms, result.p99_ms, result.p999_ms
    );
    result
}

fn bind_server(
    snapshot: &Arc<Snapshot>,
    mode: ServerMode,
    workers: usize,
) -> (steam_net::HttpServer, Arc<ApiService>) {
    // The bench measures the serving path, not the rate limiter.
    let service = ApiService::new(
        Arc::clone(snapshot),
        RateLimit { per_key_rps: 1e12, burst: 1e12 },
    );
    let config = ServerConfig { workers, mode, ..Default::default() };
    serve_service_config(service, "127.0.0.1:0", config, None, None).expect("bind")
}

fn main() {
    let users: usize = arg("--users").and_then(|s| s.parse().ok()).unwrap_or(300);
    let conns: usize = arg("--conns").and_then(|s| s.parse().ok()).unwrap_or(10_000);
    let rate: f64 = arg("--rate").and_then(|s| s.parse().ok()).unwrap_or(20_000.0);
    let duration_secs: f64 =
        arg("--duration-secs").and_then(|s| s.parse().ok()).unwrap_or(10.0);
    let threads: usize = arg("--threads").and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(4, |n| n.get()).min(8)
    });
    let server_workers: usize =
        arg("--server-workers").and_then(|s| s.parse().ok()).unwrap_or(8);
    let warmup_per_conn: u64 =
        arg("--warmup-per-conn").and_then(|s| s.parse().ok()).unwrap_or(2);
    let seed: u64 = arg("--seed").and_then(|s| s.parse().ok()).unwrap_or(2016);
    let out = arg("--out").unwrap_or_else(|| "BENCH_serve.json".into());
    let trace = has("--trace");
    let default_mode = if cfg!(target_os = "linux") { "both" } else { "threaded" };
    let mode_arg = arg("--mode").unwrap_or_else(|| default_mode.into());
    let duration = Duration::from_secs_f64(duration_secs);

    // Each connection is two fds on our side (bench socket + server socket
    // lives in the same process); leave generous headroom.
    let limit = steam_net::raise_nofile_limit((conns as u64) * 3 + 512);
    eprintln!("# fd limit: {limit}");

    let mut cfg = SynthConfig::small(seed);
    cfg.n_users = users;
    cfg.n_products = (users / 3).max(50);
    cfg.n_groups = (users / 12).max(10);
    eprintln!("# generating {users} users (seed {seed})...");
    let snapshot = Arc::new(Generator::new(cfg).generate());
    let mix = Arc::new(TargetMix::new(&snapshot, seed));

    // Byte-identity across modes: same snapshot, two servers, every probe
    // response compared raw. (Skipped off Linux, where only one mode runs.)
    let mut identical = false;
    if cfg!(target_os = "linux") {
        let (epoll_server, _s1) = bind_server(&snapshot, ServerMode::Epoll, server_workers);
        let (threaded_server, _s2) =
            bind_server(&snapshot, ServerMode::Threaded, server_workers);
        assert_eq!(epoll_server.mode(), ServerMode::Epoll);
        assert_eq!(threaded_server.mode(), ServerMode::Threaded);
        for target in mix.probes() {
            let a = fetch_raw(epoll_server.addr(), target);
            let b = fetch_raw(threaded_server.addr(), target);
            assert_eq!(a, b, "modes disagree on {target}");
        }
        identical = true;
        eprintln!("# probe responses byte-identical across epoll/threaded");
    }

    let mut selected: Vec<(&'static str, &'static str, ServerMode, usize)> = Vec::new();
    if mode_arg == "both" || mode_arg == "epoll" {
        if !cfg!(target_os = "linux") {
            eprintln!("error: epoll mode requires Linux");
            std::process::exit(2);
        }
        selected.push(("epoll", "epoll+trace", ServerMode::Epoll, conns));
    }
    if mode_arg == "both" || mode_arg == "threaded" {
        // A threaded worker owns its connection until close, so only
        // `server_workers` connections can make progress at once — the
        // documented cap; benching more would deadlock the warmup.
        let threaded_conns = conns.min(server_workers);
        if threaded_conns < conns {
            eprintln!(
                "# [threaded] fleet capped at {threaded_conns} connections (worker count)"
            );
        }
        selected.push(("threaded", "threaded+trace", ServerMode::Threaded, threaded_conns));
    }
    assert!(!selected.is_empty(), "--mode must be both, epoll or threaded");

    let mut runs = Vec::new();
    let mut trace_overhead = Vec::new();
    for (label, traced_label, mode, mode_conns) in selected {
        let (server, _svc) = bind_server(&snapshot, mode, server_workers);
        let off = run_mode(
            label,
            server.addr(),
            mode_conns,
            rate,
            duration,
            threads,
            Arc::clone(&mix),
            warmup_per_conn,
            false,
        );
        if trace {
            // Same server, same fleet size: only the trace header differs,
            // so the delta isolates header parse + span recording cost.
            let on = run_mode(
                traced_label,
                server.addr(),
                mode_conns,
                rate,
                duration,
                threads,
                Arc::clone(&mix),
                warmup_per_conn,
                true,
            );
            let overhead_pct = (1.0
                - on.requests_per_sec / off.requests_per_sec.max(1e-9))
                * 100.0;
            eprintln!(
                "# [{label}] tracing overhead: {:.0} -> {:.0} req/s ({overhead_pct:+.2}%)",
                off.requests_per_sec, on.requests_per_sec
            );
            trace_overhead.push(Json::obj([
                ("mode", Json::Str(label.to_string())),
                ("requests_per_sec_untraced", Json::Num(off.requests_per_sec)),
                ("requests_per_sec_traced", Json::Num(on.requests_per_sec)),
                ("p99_ms_untraced", Json::Num(off.p99_ms)),
                ("p99_ms_traced", Json::Num(on.p99_ms)),
                ("overhead_pct", Json::Num(overhead_pct)),
            ]));
        }
        runs.push(off);
    }

    let mut report_fields = vec![
        ("bench", Json::Str("serve".into())),
        ("users", Json::Num(users as f64)),
        ("conns", Json::Num(conns as f64)),
        ("rate", Json::Num(rate)),
        ("duration_secs", Json::Num(duration_secs)),
        ("threads", Json::Num(threads as f64)),
        ("server_workers", Json::Num(server_workers as f64)),
        ("seed", Json::Num(seed as f64)),
        ("runs", Json::Arr(runs.iter().map(RunResult::to_json).collect())),
        ("responses_identical", Json::Bool(identical)),
    ];
    if trace {
        report_fields.push(("trace_overhead", Json::Arr(trace_overhead)));
    }
    let report = Json::obj(report_fields);
    let text = report.to_text();
    std::fs::write(&out, &text).expect("write BENCH_serve.json");
    println!("{text}");
    eprintln!("# wrote {out}");
}
