//! Out-of-core report benchmark: renders the full report twice over the
//! same v3 snapshot file — once through the streaming [`SnapshotReader`]
//! context and once through a full in-memory decode — and records wall
//! time plus `peak_rss_bytes` for each pass.
//!
//! The two report texts must be byte-identical; the interesting numbers
//! are the memory ceilings. On kernels that expose
//! `/proc/self/clear_refs` the peak is reset between phases so each pass
//! reports its own high-water mark; where the reset is unavailable
//! (`peak_rss_reset: false`, e.g. sandboxed kernels) the peaks are
//! cumulative and only the final value is a true ceiling — the CI
//! `rss-smoke` job's hard `ulimit -v` cap is the authoritative proof
//! there.
//!
//! ```text
//! cargo run --release -p steam-bench --bin report_bench
//! cargo run --release -p steam-bench --bin report_bench -- --users 20000 --jobs 4 --out BENCH_report.json
//! ```
//!
//! [`SnapshotReader`]: steam_model::SnapshotReader

use std::time::Instant;

use steam_analysis::{render_full_report, Ctx, ReportInput};
use steam_model::codec;
use steam_net::Json;
use steam_synth::{Generator, SynthConfig};

fn arg(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

struct Phase {
    label: &'static str,
    elapsed_secs: f64,
    peak_rss_bytes: Option<u64>,
}

impl Phase {
    fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::Str(self.label.to_string())),
            ("elapsed_secs", Json::Num(self.elapsed_secs)),
            (
                "peak_rss_bytes",
                self.peak_rss_bytes.map_or(Json::Null, |b| Json::Num(b as f64)),
            ),
        ])
    }
}

fn main() {
    let users: usize = arg("--users").and_then(|s| s.parse().ok()).unwrap_or(10_000);
    let jobs: usize = arg("--jobs")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    let seed: u64 = arg("--seed").and_then(|s| s.parse().ok()).unwrap_or(2016);
    let out = arg("--out").unwrap_or_else(|| "BENCH_report.json".into());
    let keep = arg("--snapshot");

    // Synthesize the world and land it in a v3 file; the world itself is
    // dropped before either measured phase so the report passes own the
    // memory profile (modulo allocator retention — see the reset note).
    let path = keep.clone().map(std::path::PathBuf::from).unwrap_or_else(|| {
        std::env::temp_dir().join(format!("report-bench-{}.snap", std::process::id()))
    });
    eprintln!("# synthesizing {users} users (seed {seed}) into {}...", path.display());
    let mut cfg = SynthConfig::small(seed);
    cfg.n_users = users;
    cfg.n_groups = (users / 33).max(10);
    cfg.validate().expect("config");
    let world = Generator::new(cfg).generate_world_jobs(jobs);
    codec::write_snapshot_v3(&path, &world.snapshot, jobs).expect("v3 write");
    let snapshot_mb = std::fs::metadata(&path).expect("stat").len() as f64 / (1024.0 * 1024.0);
    drop(world);

    // --- streaming pass: mmap reader, bounded-memory context ---
    let reset_works = steam_obs::reset_peak_rss();
    let start = Instant::now();
    let reader = steam_model::SnapshotReader::open(&path).expect("v3 open");
    let streamed_ctx = Ctx::from_reader(&reader, jobs).expect("streaming context");
    let streamed_text = render_full_report(
        &ReportInput { ctx: &streamed_ctx, second: None, panel: None },
        jobs,
    );
    let streaming = Phase {
        label: "streaming",
        elapsed_secs: start.elapsed().as_secs_f64(),
        peak_rss_bytes: steam_obs::peak_rss_bytes(),
    };
    drop(streamed_ctx);
    drop(reader);

    // --- in-memory pass: full decode, resident context ---
    steam_obs::reset_peak_rss();
    let start = Instant::now();
    let snapshot = codec::read_snapshot_jobs(&path, jobs).expect("full decode");
    let mem_ctx = Ctx::new_with_jobs(&snapshot, jobs);
    let mem_text =
        render_full_report(&ReportInput { ctx: &mem_ctx, second: None, panel: None }, jobs);
    let in_memory = Phase {
        label: "in_memory",
        elapsed_secs: start.elapsed().as_secs_f64(),
        peak_rss_bytes: steam_obs::peak_rss_bytes(),
    };

    assert_eq!(
        streamed_text, mem_text,
        "streaming report diverged from the in-memory report"
    );
    for p in [&streaming, &in_memory] {
        match p.peak_rss_bytes {
            Some(b) => eprintln!(
                "# {:<10} {:>7.3}s peak_rss = {:.1} MB",
                p.label,
                p.elapsed_secs,
                b as f64 / (1024.0 * 1024.0)
            ),
            None => eprintln!("# {:<10} {:>7.3}s peak_rss unavailable", p.label, p.elapsed_secs),
        }
    }

    let report = Json::obj([
        ("bench", Json::Str("report".into())),
        ("users", Json::Num(users as f64)),
        ("jobs", Json::Num(jobs as f64)),
        ("seed", Json::Num(seed as f64)),
        ("snapshot_mb", Json::Num(snapshot_mb)),
        ("runs", Json::Arr(vec![streaming.to_json(), in_memory.to_json()])),
        (
            "peak_rss_bytes",
            steam_obs::peak_rss_bytes().map_or(Json::Null, |b| Json::Num(b as f64)),
        ),
        ("peak_rss_reset", Json::Bool(reset_works)),
        ("outputs_identical", Json::Bool(true)),
    ]);
    let text = report.to_text();
    std::fs::write(&out, &text).expect("write BENCH_report.json");
    println!("{text}");
    eprintln!("# wrote {out}");
    if keep.is_none() {
        std::fs::remove_file(&path).ok();
    }
}
