//! The reproduction harness: generates the experiment-scale world and prints
//! every table and figure of the paper, side by side with the paper's
//! published values (quoted inside each renderer).
//!
//! ```text
//! cargo run --release -p steam-bench --bin repro            # medium scale
//! cargo run --release -p steam-bench --bin repro -- small   # quick look
//! cargo run --release -p steam-bench --bin repro -- large   # 2M users
//! ```

use steam_analysis::{render, Ctx, Experiment, ReportInput};
use steam_synth::{Generator, SynthConfig};

fn main() {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "medium".into());
    let seed = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2016u64);
    let cfg = match scale.as_str() {
        "small" => SynthConfig::small(seed),
        "medium" => SynthConfig::medium(seed),
        "large" => SynthConfig::large(seed),
        other => {
            eprintln!("unknown scale {other:?} (want small|medium|large)");
            std::process::exit(1);
        }
    };

    eprintln!("# generating {} users (seed {seed})...", cfg.n_users);
    let t0 = std::time::Instant::now();
    let world = Generator::new(cfg).generate_world();
    eprintln!("# generated in {:.1?}", t0.elapsed());

    let ctx = Ctx::new(&world.snapshot);
    let second = Ctx::new(&world.second_snapshot);
    let input = ReportInput { ctx: &ctx, second: Some(&second), panel: Some(&world.panel) };

    for e in Experiment::ALL {
        let t = std::time::Instant::now();
        let text = render(&input, e);
        println!("==== {} ({:.2?}) ====", e.name(), t.elapsed());
        println!("{text}");
    }
    eprintln!("# total {:.1?}", t0.elapsed());
}
