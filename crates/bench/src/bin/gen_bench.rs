//! World-synthesis + snapshot-codec throughput benchmark: generates the same
//! world serially and in parallel, encodes/decodes it through the v1 and v2
//! (sectioned) containers, and reports users/sec and MB/sec for each,
//! establishing the BENCH trajectory for the generate hot path.
//!
//! The parallel world must be byte-identical to the serial one, and the v2
//! parallel encoding byte-identical to the v2 serial encoding — parallelism
//! is not allowed to change a single output byte. On a single-core host the
//! interesting number is parity, not speedup.
//!
//! ```text
//! cargo run --release -p steam-bench --bin gen_bench
//! cargo run --release -p steam-bench --bin gen_bench -- --users 20000 --jobs 8 --out BENCH_gen.json
//! ```

use std::time::Instant;

use steam_model::codec;
use steam_net::Json;
use steam_synth::{Generator, SynthConfig};

struct Run {
    name: &'static str,
    jobs: usize,
    elapsed_secs: f64,
    /// users/sec for synth runs, MB/sec for codec runs.
    rate: f64,
    rate_unit: &'static str,
}

impl Run {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.to_string())),
            ("jobs", Json::Num(self.jobs as f64)),
            ("elapsed_secs", Json::Num(self.elapsed_secs)),
            ("rate", Json::Num(self.rate)),
            ("rate_unit", Json::Str(self.rate_unit.to_string())),
        ])
    }
}

fn report_run(name: &'static str, jobs: usize, elapsed: f64, work: f64, unit: &'static str) -> Run {
    let run = Run { name, jobs, elapsed_secs: elapsed, rate: work / elapsed.max(1e-9), rate_unit: unit };
    eprintln!(
        "# {name:<16} jobs={jobs:<2} {:>7.3}s = {:>10.1} {unit}",
        run.elapsed_secs, run.rate
    );
    run
}

fn arg(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn main() {
    let users: usize = arg("--users").and_then(|s| s.parse().ok()).unwrap_or(10_000);
    let jobs: usize = arg("--jobs")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    let seed: u64 = arg("--seed").and_then(|s| s.parse().ok()).unwrap_or(2016);
    let out = arg("--out").unwrap_or_else(|| "BENCH_gen.json".into());

    let mut cfg = SynthConfig::small(seed);
    cfg.n_users = users;
    cfg.n_groups = (users / 33).max(10);
    cfg.validate().expect("config");
    eprintln!("# synthesizing {users} users (seed {seed}, up to {jobs} jobs)...");

    // --- synthesis: serial vs parallel, worlds must match byte-for-byte ---
    let start = Instant::now();
    let serial_world = Generator::new(cfg.clone()).generate_world_jobs(1);
    let synth_serial =
        report_run("synth", 1, start.elapsed().as_secs_f64(), users as f64, "users/s");

    let start = Instant::now();
    let parallel_world = Generator::new(cfg).generate_world_jobs(jobs);
    let synth_parallel =
        report_run("synth", jobs, start.elapsed().as_secs_f64(), users as f64, "users/s");

    let v2_serial_bytes = codec::encode_snapshot_jobs(&serial_world.snapshot, 1);
    assert_eq!(
        v2_serial_bytes,
        codec::encode_snapshot_jobs(&parallel_world.snapshot, 1),
        "parallel synthesis diverged from serial"
    );
    assert_eq!(
        codec::encode_panel(&serial_world.panel),
        codec::encode_panel(&parallel_world.panel),
        "parallel panel diverged from serial"
    );
    eprintln!("# worlds byte-identical at jobs=1 and jobs={jobs}");
    drop(parallel_world);
    let snapshot = serial_world.snapshot;
    let mb = v2_serial_bytes.len() as f64 / (1024.0 * 1024.0);

    // --- encode: v1 serial, v2 serial, v2 parallel ---
    let start = Instant::now();
    let v1_bytes = codec::encode_snapshot(&snapshot);
    let enc_v1 = report_run("encode_v1", 1, start.elapsed().as_secs_f64(), mb, "MB/s");

    let start = Instant::now();
    let check = codec::encode_snapshot_jobs(&snapshot, 1);
    let enc_v2_serial = report_run("encode_v2", 1, start.elapsed().as_secs_f64(), mb, "MB/s");

    let start = Instant::now();
    let v2_parallel_bytes = codec::encode_snapshot_jobs(&snapshot, jobs);
    let enc_v2_parallel = report_run("encode_v2", jobs, start.elapsed().as_secs_f64(), mb, "MB/s");
    assert_eq!(check, v2_parallel_bytes, "parallel v2 encoding diverged from serial");
    eprintln!("# v2 encodings byte-identical at jobs=1 and jobs={jobs}");

    // --- decode: v1 serial, v2 serial, v2 parallel ---
    let start = Instant::now();
    let d = codec::decode_snapshot(v1_bytes).expect("v1 decode");
    let dec_v1 = report_run("decode_v1", 1, start.elapsed().as_secs_f64(), mb, "MB/s");
    assert_eq!(d.n_users(), snapshot.n_users());

    let start = Instant::now();
    let d = codec::decode_snapshot_jobs(v2_serial_bytes.clone(), 1).expect("v2 decode");
    let dec_v2_serial = report_run("decode_v2", 1, start.elapsed().as_secs_f64(), mb, "MB/s");
    assert_eq!(d.n_users(), snapshot.n_users());

    let start = Instant::now();
    let d = codec::decode_snapshot_jobs(v2_serial_bytes, jobs).expect("v2 decode");
    let dec_v2_parallel = report_run("decode_v2", jobs, start.elapsed().as_secs_f64(), mb, "MB/s");
    assert_eq!(d.n_users(), snapshot.n_users());

    // --- v3: chunk-at-a-time file write, then a streaming open ---
    let v3_path = std::env::temp_dir().join(format!("gen-bench-v3-{}.snap", std::process::id()));
    let start = Instant::now();
    codec::write_snapshot_v3(&v3_path, &snapshot, jobs).expect("v3 write");
    let enc_v3 = report_run("write_v3", jobs, start.elapsed().as_secs_f64(), mb, "MB/s");

    let start = Instant::now();
    let reader = steam_model::SnapshotReader::open(&v3_path).expect("v3 open");
    assert_eq!(reader.n_users(), snapshot.n_users());
    let dec_v3 = report_run("open_v3", 1, start.elapsed().as_secs_f64(), mb, "MB/s");
    drop(reader);
    std::fs::remove_file(&v3_path).ok();

    let peak_rss = steam_obs::peak_rss_bytes();
    if let Some(peak) = peak_rss {
        eprintln!("# peak_rss_bytes = {peak} ({:.1} MB)", peak as f64 / (1024.0 * 1024.0));
    }

    let report = Json::obj([
        ("bench", Json::Str("gen".into())),
        ("users", Json::Num(users as f64)),
        ("jobs", Json::Num(jobs as f64)),
        ("seed", Json::Num(seed as f64)),
        ("snapshot_mb", Json::Num(mb)),
        (
            "synth",
            Json::Arr(vec![synth_serial.to_json(), synth_parallel.to_json()]),
        ),
        (
            "encode",
            Json::Arr(vec![
                enc_v1.to_json(),
                enc_v2_serial.to_json(),
                enc_v2_parallel.to_json(),
                enc_v3.to_json(),
            ]),
        ),
        (
            "decode",
            Json::Arr(vec![
                dec_v1.to_json(),
                dec_v2_serial.to_json(),
                dec_v2_parallel.to_json(),
                dec_v3.to_json(),
            ]),
        ),
        (
            "peak_rss_bytes",
            peak_rss.map_or(Json::Null, |b| Json::Num(b as f64)),
        ),
        (
            "synth_speedup",
            Json::Num(synth_parallel.rate / synth_serial.rate.max(1e-9)),
        ),
        ("outputs_identical", Json::Bool(true)),
    ]);
    let text = report.to_text();
    std::fs::write(&out, &text).expect("write BENCH_gen.json");
    println!("{text}");
    eprintln!("# wrote {out}");
}
