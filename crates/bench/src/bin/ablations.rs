//! Ablation harness for the generator's design choices (DESIGN.md):
//!
//! 1. **Matching noise** — how the stub-matcher's key noise trades off the
//!    §7 homophily magnitudes;
//! 2. **Engagement couplings** — what happens to the pairwise behavior
//!    correlations when the shared engagement factor is cut;
//! 3. **Collector archetype** — the Figure 4/8 tail signatures with the
//!    archetype removed;
//! 4. **Catalog growth in the second snapshot** — §8's tail-vs-body
//!    asymmetry disappears without it.
//!
//! ```text
//! cargo run --release -p steam-bench --bin ablations
//! ```

use steam_analysis::{homophily, Ctx};
use steam_stats::Ecdf;
use steam_synth::{Generator, SynthConfig};

fn world(mutate: impl FnOnce(&mut SynthConfig)) -> steam_synth::World {
    let mut cfg = SynthConfig::small(2016);
    cfg.n_users = 60_000;
    cfg.n_groups = 1_800;
    mutate(&mut cfg);
    Generator::new(cfg).generate_world()
}

fn homophily_row(label: &str, w: &steam_synth::World) {
    let ctx = Ctx::new(&w.snapshot);
    let rows = homophily::homophily_correlations(&ctx);
    print!("{label:<28}");
    for c in rows {
        print!(" {:>6.2}", c.rho);
    }
    println!();
}

fn main() {
    println!("== ablation 1: matching noise vs homophily ==");
    println!(
        "{:<28} {:>6} {:>6} {:>6} {:>6}",
        "matching_noise", "value", "degree", "play", "owned"
    );
    for tau in [0.05, 0.12, 0.5, 2.0] {
        let w = world(|c| c.matching_noise = tau);
        homophily_row(&format!("tau = {tau}"), &w);
    }

    println!("\n== ablation 2: engagement coupling vs behavior correlations ==");
    for (label, lib, play) in [
        ("calibrated (1.0 / 0.85)", 1.0, 0.85),
        ("halved", 0.5, 0.42),
        ("off", 0.01, 0.01),
    ] {
        let w = world(|c| {
            c.library_engagement_coupling = lib;
            c.playtime_engagement_coupling = play;
        });
        let ctx = Ctx::new(&w.snapshot);
        let rows = homophily::behavior_correlations(&ctx);
        print!("{label:<28}");
        for c in rows.iter().take(3) {
            print!(" {:>6.2}", c.rho);
        }
        println!("   (games-friends / games-2wk / games-total)");
    }

    println!("\n== ablation 3: collector archetype vs ownership tail ==");
    for (label, rate) in [("with collectors", 1.5e-4), ("without", 0.0)] {
        let w = world(|c| c.collector_rate = rate);
        let ctx = Ctx::new(&w.snapshot);
        let owned: Vec<f64> = steam_analysis::Ctx::nonzero_f64(&ctx.owned);
        let e = Ecdf::new(owned);
        println!(
            "{label:<28} p99 = {:>5.0} games, max = {:>5.0} games",
            e.percentile(99.0),
            e.max().unwrap_or(0.0)
        );
    }

    println!("\n== ablation 4: §8 growth asymmetry needs catalog growth ==");
    let w = world(|_| {});
    let first = Ctx::new(&w.snapshot);
    let second = Ctx::new(&w.second_snapshot);
    for row in steam_analysis::evolution::snapshot_growth(&first, &second) {
        println!(
            "{:<28} tail x{:.2} vs body x{:.2}",
            row.attribute,
            row.tail_factor(),
            row.body_factor()
        );
    }
    println!("(without extend_catalog the top collector is pinned at the catalog ceiling\n and the games-owned tail factor collapses to ~1.0 — see synth::evolve)");
}
