//! Compressed sparse row adjacency for the friendship graph.
//!
//! The paper's graph has 108.7 M nodes and 196.4 M undirected edges; CSR
//! keeps neighbor iteration cache-friendly with two flat arrays.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

use crate::par;

/// A source of undirected edges grouped into independently readable chunks —
/// the shape in which the streaming snapshot reader exposes the friendships
/// section. `Sync` so worker threads can claim chunks concurrently.
pub trait EdgeChunks: Sync {
    fn n_chunks(&self) -> usize;
    /// Calls `f(a, b)` for every edge in chunk `k`, in chunk order. A chunk
    /// must yield the same edges every time it is visited (the CSR build
    /// reads the source twice).
    fn for_each(&self, k: usize, f: &mut dyn FnMut(u32, u32));
}

/// Runs `f(0..n)` on up to `jobs` scoped workers claiming indices through an
/// atomic cursor.
fn claim_chunks(jobs: usize, n: usize, f: impl Fn(usize) + Sync) {
    if jobs <= 1 || n <= 1 {
        for k in 0..n {
            f(k);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..jobs.min(n) {
            s.spawn(|| loop {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                if k >= n {
                    break;
                }
                f(k);
            });
        }
    });
}

/// An undirected graph in CSR form. Each undirected edge appears in both
/// endpoints' neighbor lists.
#[derive(Clone, Debug)]
pub struct Csr {
    offsets: Vec<u64>,
    neighbors: Vec<u32>,
    n_edges: usize,
}

impl Csr {
    /// Builds from an undirected edge list over nodes `0..n_nodes`.
    /// Edges may be in any order; endpoints must be `< n_nodes`.
    pub fn from_edges(n_nodes: usize, edges: impl Iterator<Item = (u32, u32)> + Clone) -> Self {
        let mut deg = vec![0u64; n_nodes];
        let mut n_edges = 0usize;
        for (a, b) in edges.clone() {
            assert!((a as usize) < n_nodes && (b as usize) < n_nodes, "edge out of range");
            deg[a as usize] += 1;
            deg[b as usize] += 1;
            n_edges += 1;
        }
        let mut offsets = Vec::with_capacity(n_nodes + 1);
        offsets.push(0u64);
        let mut acc = 0u64;
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u64> = offsets[..n_nodes].to_vec();
        let mut neighbors = vec![0u32; acc as usize];
        for (a, b) in edges {
            neighbors[cursor[a as usize] as usize] = b;
            cursor[a as usize] += 1;
            neighbors[cursor[b as usize] as usize] = a;
            cursor[b as usize] += 1;
        }
        // Sort each adjacency list for deterministic iteration + binary search.
        for u in 0..n_nodes {
            let (s, e) = (offsets[u] as usize, offsets[u + 1] as usize);
            neighbors[s..e].sort_unstable();
        }
        Csr { offsets, neighbors, n_edges }
    }

    /// [`Csr::from_edges`] over an edge slice, with both construction passes
    /// (degree counting and adjacency fill) plus the per-row sort chunked
    /// over `jobs` scoped threads.
    ///
    /// The result is identical to the serial build for any `jobs`: per-chunk
    /// degree counts merge by integer summation, fill order within a row is
    /// arbitrary but the canonical ascending sort erases it, and offsets are
    /// a prefix sum of the merged counts either way.
    pub fn from_edge_list(n_nodes: usize, edges: &[(u32, u32)], jobs: usize) -> Self {
        // Below a few thousand edges the scoped-thread setup dwarfs the work.
        if jobs <= 1 || edges.len() < 4096 {
            return Self::from_edges(n_nodes, edges.iter().copied());
        }

        // Pass 1: per-chunk degree counts.
        let chunk_counts = par::map_chunks(edges.len(), jobs, |range| {
            let mut deg = vec![0u64; n_nodes];
            for &(a, b) in &edges[range] {
                assert!((a as usize) < n_nodes && (b as usize) < n_nodes, "edge out of range");
                deg[a as usize] += 1;
                deg[b as usize] += 1;
            }
            deg
        });
        let mut offsets = Vec::with_capacity(n_nodes + 1);
        offsets.push(0u64);
        let mut acc = 0u64;
        for u in 0..n_nodes {
            acc += chunk_counts.iter().map(|c| c[u]).sum::<u64>();
            offsets.push(acc);
        }

        // Pass 2: fill through per-node atomic cursors. Slot assignment
        // within a row races, but the sort below restores canonical order.
        let cursors: Vec<AtomicU64> =
            offsets[..n_nodes].iter().map(|&o| AtomicU64::new(o)).collect();
        let slots: Vec<AtomicU32> = (0..acc as usize).map(|_| AtomicU32::new(0)).collect();
        par::map_chunks(edges.len(), jobs, |range| {
            for &(a, b) in &edges[range] {
                let ia = cursors[a as usize].fetch_add(1, Ordering::Relaxed) as usize;
                slots[ia].store(b, Ordering::Relaxed);
                let ib = cursors[b as usize].fetch_add(1, Ordering::Relaxed) as usize;
                slots[ib].store(a, Ordering::Relaxed);
            }
        });
        let mut neighbors: Vec<u32> = slots.into_iter().map(AtomicU32::into_inner).collect();

        // Pass 3: sort each adjacency list.
        sort_rows(&offsets, &mut neighbors, n_nodes, jobs);

        Csr { offsets, neighbors, n_edges: edges.len() }
    }

    /// Builds CSR from chunked edges in two passes — shared atomic degree
    /// counting, then fill through per-node atomic cursors — with chunks
    /// claimed by an atomic cursor on up to `jobs` threads. Reads the source
    /// twice and never materializes the full edge list, so resident memory is
    /// the CSR itself plus `O(n_nodes)` counters, independent of how the
    /// chunks are stored. The result is identical to [`Csr::from_edges`]
    /// over the same edges, for any `jobs`: degree sums are order-independent,
    /// and the canonical per-row sort erases fill-order races.
    pub fn from_edge_chunks(n_nodes: usize, src: &dyn EdgeChunks, jobs: usize) -> Self {
        let jobs = jobs.max(1);
        let n_chunks = src.n_chunks();

        // Pass 1: degree counts (u32: degrees are capped far below 2^32).
        let deg: Vec<AtomicU32> = (0..n_nodes).map(|_| AtomicU32::new(0)).collect();
        let edge_count = AtomicU64::new(0);
        claim_chunks(jobs, n_chunks, |k| {
            let mut in_chunk = 0u64;
            src.for_each(k, &mut |a, b| {
                assert!((a as usize) < n_nodes && (b as usize) < n_nodes, "edge out of range");
                deg[a as usize].fetch_add(1, Ordering::Relaxed);
                deg[b as usize].fetch_add(1, Ordering::Relaxed);
                in_chunk += 1;
            });
            edge_count.fetch_add(in_chunk, Ordering::Relaxed);
        });
        let mut offsets = Vec::with_capacity(n_nodes + 1);
        offsets.push(0u64);
        let mut acc = 0u64;
        for d in &deg {
            acc += u64::from(d.load(Ordering::Relaxed));
            offsets.push(acc);
        }
        drop(deg);

        // Pass 2: fill through per-node atomic cursors, re-reading the
        // chunks. Slot assignment within a row races; the sort restores
        // canonical order.
        let cursors: Vec<AtomicU64> =
            offsets[..n_nodes].iter().map(|&o| AtomicU64::new(o)).collect();
        let slots: Vec<AtomicU32> = (0..acc as usize).map(|_| AtomicU32::new(0)).collect();
        claim_chunks(jobs, n_chunks, |k| {
            src.for_each(k, &mut |a, b| {
                let ia = cursors[a as usize].fetch_add(1, Ordering::Relaxed) as usize;
                slots[ia].store(b, Ordering::Relaxed);
                let ib = cursors[b as usize].fetch_add(1, Ordering::Relaxed) as usize;
                slots[ib].store(a, Ordering::Relaxed);
            });
        });
        let mut neighbors: Vec<u32> = slots.into_iter().map(AtomicU32::into_inner).collect();

        sort_rows(&offsets, &mut neighbors, n_nodes, jobs);

        let n_edges = edge_count.into_inner() as usize;
        Csr { offsets, neighbors, n_edges }
    }

    pub fn n_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges (each counted once).
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Neighbors of `u`, sorted ascending.
    pub fn neighbors(&self, u: u32) -> &[u32] {
        let s = self.offsets[u as usize] as usize;
        let e = self.offsets[u as usize + 1] as usize;
        &self.neighbors[s..e]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: u32) -> u32 {
        (self.offsets[u as usize + 1] - self.offsets[u as usize]) as u32
    }

    /// All degrees.
    pub fn degrees(&self) -> Vec<u32> {
        (0..self.n_nodes() as u32).map(|u| self.degree(u)).collect()
    }

    /// Whether `a` and `b` are adjacent (binary search).
    pub fn has_edge(&self, a: u32, b: u32) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Mean degree (2·E / N); zero for an empty graph.
    pub fn mean_degree(&self) -> f64 {
        if self.n_nodes() == 0 {
            0.0
        } else {
            2.0 * self.n_edges as f64 / self.n_nodes() as f64
        }
    }
}

/// Sorts every adjacency row ascending, threads owning disjoint contiguous
/// node ranges (rows are contiguous in node order).
fn sort_rows(offsets: &[u64], neighbors: &mut [u32], n_nodes: usize, jobs: usize) {
    if jobs <= 1 {
        for u in 0..n_nodes {
            let (s, e) = (offsets[u] as usize, offsets[u + 1] as usize);
            neighbors[s..e].sort_unstable();
        }
        return;
    }
    let per = n_nodes.div_ceil(jobs);
    let mut tail: &mut [u32] = neighbors;
    let mut consumed = 0u64;
    std::thread::scope(|scope| {
        for j in 0..jobs {
            let lo = (j * per).min(n_nodes);
            let hi = ((j + 1) * per).min(n_nodes);
            if lo >= hi {
                continue;
            }
            let len = (offsets[hi] - consumed) as usize;
            let (head, rest) = std::mem::take(&mut tail).split_at_mut(len);
            tail = rest;
            consumed = offsets[hi];
            let base = offsets[lo];
            scope.spawn(move || {
                for u in lo..hi {
                    let s = (offsets[u] - base) as usize;
                    let e = (offsets[u + 1] - base) as usize;
                    head[s..e].sort_unstable();
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> Csr {
        // 0 - 1 - 2 - 3
        Csr::from_edges(4, [(0, 1), (1, 2), (2, 3)].into_iter())
    }

    #[test]
    fn basic_structure() {
        let g = path_graph();
        assert_eq!(g.n_nodes(), 4);
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degrees(), vec![1, 2, 2, 1]);
        assert!((g.mean_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn has_edge_both_directions() {
        let g = path_graph();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn isolated_nodes() {
        let g = Csr::from_edges(5, [(0, 1)].into_iter());
        assert_eq!(g.degree(4), 0);
        assert!(g.neighbors(4).is_empty());
        assert_eq!(g.n_edges(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, std::iter::empty());
        assert_eq!(g.n_nodes(), 0);
        assert_eq!(g.mean_degree(), 0.0);
    }

    #[test]
    fn edge_order_does_not_matter() {
        let a = Csr::from_edges(4, [(0, 1), (1, 2), (2, 3)].into_iter());
        let b = Csr::from_edges(4, [(2, 3), (0, 1), (1, 2)].into_iter());
        for u in 0..4 {
            assert_eq!(a.neighbors(u), b.neighbors(u));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        Csr::from_edges(2, [(0, 5)].into_iter());
    }

    #[test]
    fn parallel_build_matches_serial() {
        use rand::prelude::*;
        let n_nodes = 2_000u32;
        let mut rng = StdRng::seed_from_u64(42);
        // Well above the small-input cutoff so the threaded path runs.
        let edges: Vec<(u32, u32)> = (0..10_000)
            .map(|_| (rng.gen_range(0..n_nodes), rng.gen_range(0..n_nodes)))
            .collect();
        let serial = Csr::from_edges(n_nodes as usize, edges.iter().copied());
        for jobs in [1, 2, 3, 8] {
            let par = Csr::from_edge_list(n_nodes as usize, &edges, jobs);
            assert_eq!(par.offsets, serial.offsets, "jobs={jobs}");
            assert_eq!(par.neighbors, serial.neighbors, "jobs={jobs}");
            assert_eq!(par.n_edges(), serial.n_edges(), "jobs={jobs}");
        }
    }

    struct SliceChunks<'a> {
        edges: &'a [(u32, u32)],
        cap: usize,
    }

    impl EdgeChunks for SliceChunks<'_> {
        fn n_chunks(&self) -> usize {
            self.edges.len().div_ceil(self.cap)
        }

        fn for_each(&self, k: usize, f: &mut dyn FnMut(u32, u32)) {
            let lo = k * self.cap;
            let hi = (lo + self.cap).min(self.edges.len());
            for &(a, b) in &self.edges[lo..hi] {
                f(a, b);
            }
        }
    }

    #[test]
    fn chunked_build_matches_serial() {
        use rand::prelude::*;
        let n_nodes = 500u32;
        let mut rng = StdRng::seed_from_u64(7);
        let edges: Vec<(u32, u32)> = (0..3_000)
            .map(|_| (rng.gen_range(0..n_nodes), rng.gen_range(0..n_nodes)))
            .collect();
        let serial = Csr::from_edges(n_nodes as usize, edges.iter().copied());
        for cap in [1, 17, 4096] {
            for jobs in [1, 2, 8] {
                let src = SliceChunks { edges: &edges, cap };
                let chunked = Csr::from_edge_chunks(n_nodes as usize, &src, jobs);
                assert_eq!(chunked.offsets, serial.offsets, "cap={cap} jobs={jobs}");
                assert_eq!(chunked.neighbors, serial.neighbors, "cap={cap} jobs={jobs}");
                assert_eq!(chunked.n_edges(), serial.n_edges(), "cap={cap} jobs={jobs}");
            }
        }
    }

    #[test]
    fn chunked_build_handles_empty_source() {
        let src = SliceChunks { edges: &[], cap: 8 };
        let g = Csr::from_edge_chunks(3, &src, 4);
        assert_eq!(g.n_nodes(), 3);
        assert_eq!(g.n_edges(), 0);
    }

    #[test]
    fn small_edge_lists_take_the_serial_path() {
        let edges = [(0u32, 1u32), (1, 2), (2, 3)];
        let a = Csr::from_edge_list(4, &edges, 8);
        let b = Csr::from_edges(4, edges.iter().copied());
        assert_eq!(a.offsets, b.offsets);
        assert_eq!(a.neighbors, b.neighbors);
    }
}
