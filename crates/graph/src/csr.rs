//! Compressed sparse row adjacency for the friendship graph.
//!
//! The paper's graph has 108.7 M nodes and 196.4 M undirected edges; CSR
//! keeps neighbor iteration cache-friendly with two flat arrays.

/// An undirected graph in CSR form. Each undirected edge appears in both
/// endpoints' neighbor lists.
#[derive(Clone, Debug)]
pub struct Csr {
    offsets: Vec<u64>,
    neighbors: Vec<u32>,
    n_edges: usize,
}

impl Csr {
    /// Builds from an undirected edge list over nodes `0..n_nodes`.
    /// Edges may be in any order; endpoints must be `< n_nodes`.
    pub fn from_edges(n_nodes: usize, edges: impl Iterator<Item = (u32, u32)> + Clone) -> Self {
        let mut deg = vec![0u64; n_nodes];
        let mut n_edges = 0usize;
        for (a, b) in edges.clone() {
            assert!((a as usize) < n_nodes && (b as usize) < n_nodes, "edge out of range");
            deg[a as usize] += 1;
            deg[b as usize] += 1;
            n_edges += 1;
        }
        let mut offsets = Vec::with_capacity(n_nodes + 1);
        offsets.push(0u64);
        let mut acc = 0u64;
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u64> = offsets[..n_nodes].to_vec();
        let mut neighbors = vec![0u32; acc as usize];
        for (a, b) in edges {
            neighbors[cursor[a as usize] as usize] = b;
            cursor[a as usize] += 1;
            neighbors[cursor[b as usize] as usize] = a;
            cursor[b as usize] += 1;
        }
        // Sort each adjacency list for deterministic iteration + binary search.
        for u in 0..n_nodes {
            let (s, e) = (offsets[u] as usize, offsets[u + 1] as usize);
            neighbors[s..e].sort_unstable();
        }
        Csr { offsets, neighbors, n_edges }
    }

    pub fn n_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges (each counted once).
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Neighbors of `u`, sorted ascending.
    pub fn neighbors(&self, u: u32) -> &[u32] {
        let s = self.offsets[u as usize] as usize;
        let e = self.offsets[u as usize + 1] as usize;
        &self.neighbors[s..e]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: u32) -> u32 {
        (self.offsets[u as usize + 1] - self.offsets[u as usize]) as u32
    }

    /// All degrees.
    pub fn degrees(&self) -> Vec<u32> {
        (0..self.n_nodes() as u32).map(|u| self.degree(u)).collect()
    }

    /// Whether `a` and `b` are adjacent (binary search).
    pub fn has_edge(&self, a: u32, b: u32) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Mean degree (2·E / N); zero for an empty graph.
    pub fn mean_degree(&self) -> f64 {
        if self.n_nodes() == 0 {
            0.0
        } else {
            2.0 * self.n_edges as f64 / self.n_nodes() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> Csr {
        // 0 - 1 - 2 - 3
        Csr::from_edges(4, [(0, 1), (1, 2), (2, 3)].into_iter())
    }

    #[test]
    fn basic_structure() {
        let g = path_graph();
        assert_eq!(g.n_nodes(), 4);
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degrees(), vec![1, 2, 2, 1]);
        assert!((g.mean_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn has_edge_both_directions() {
        let g = path_graph();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn isolated_nodes() {
        let g = Csr::from_edges(5, [(0, 1)].into_iter());
        assert_eq!(g.degree(4), 0);
        assert!(g.neighbors(4).is_empty());
        assert_eq!(g.n_edges(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, std::iter::empty());
        assert_eq!(g.n_nodes(), 0);
        assert_eq!(g.mean_degree(), 0.0);
    }

    #[test]
    fn edge_order_does_not_matter() {
        let a = Csr::from_edges(4, [(0, 1), (1, 2), (2, 3)].into_iter());
        let b = Csr::from_edges(4, [(2, 3), (0, 1), (1, 2)].into_iter());
        for u in 0..4 {
            assert_eq!(a.neighbors(u), b.neighbors(u));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        Csr::from_edges(2, [(0, 5)].into_iter());
    }
}
