//! Scoped-thread fan-out used by the parallel graph kernels.
//!
//! Chunk results always come back in chunk (index) order, and every caller
//! merges them with an order-preserving or exact-arithmetic reduction, so
//! output is identical for any `jobs` value.

use std::ops::Range;

/// Splits `0..n` into at most `jobs` contiguous chunks and runs `work` on
/// each in its own scoped thread; per-chunk results come back in chunk
/// order. `jobs <= 1` runs inline with no threads.
pub fn map_chunks<T, F>(n: usize, jobs: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let jobs = jobs.clamp(1, n.max(1));
    if jobs == 1 {
        return vec![work(0..n)];
    }
    let per = n.div_ceil(jobs);
    let ranges: Vec<Range<usize>> = (0..jobs)
        .map(|j| (j * per).min(n)..((j + 1) * per).min(n))
        .filter(|r| !r.is_empty())
        .collect();
    let work = &work;
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| scope.spawn(move || work(r)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_index_in_order() {
        for jobs in [1, 2, 5, 32] {
            let flat: Vec<usize> = map_chunks(17, jobs, |r| r.collect::<Vec<_>>()).concat();
            assert_eq!(flat, (0..17).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }
}
