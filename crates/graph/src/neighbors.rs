//! Neighbor-average attributes and assortativity — the machinery behind the
//! paper's homophily findings (§7, Figure 11).

use crate::csr::Csr;
use crate::par;

/// For every node with at least one neighbor, the mean of `attr` over its
/// neighbors; isolated nodes get `None`.
///
/// §7 correlates a user's market value / playtime / degree / library size
/// against exactly this quantity.
pub fn neighbor_mean(g: &Csr, attr: &[f64]) -> Vec<Option<f64>> {
    neighbor_mean_jobs(g, attr, 1)
}

/// [`neighbor_mean`] with the node range chunked over `jobs` scoped
/// threads. Each node's mean is computed exactly as in the serial pass and
/// chunks concatenate in node order, so output is identical for any `jobs`.
pub fn neighbor_mean_jobs(g: &Csr, attr: &[f64], jobs: usize) -> Vec<Option<f64>> {
    assert_eq!(attr.len(), g.n_nodes(), "attribute vector must be parallel");
    par::map_chunks(g.n_nodes(), jobs, |range| {
        range
            .map(|u| {
                let ns = g.neighbors(u as u32);
                if ns.is_empty() {
                    None
                } else {
                    Some(ns.iter().map(|&v| attr[v as usize]).sum::<f64>() / ns.len() as f64)
                }
            })
            .collect::<Vec<_>>()
    })
    .concat()
}

/// Pairs `(attr[u], mean attr of u's friends)` for all non-isolated nodes —
/// the scatter Figure 11 plots and the input to the §7 Spearman correlations.
pub fn homophily_pairs(g: &Csr, attr: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let means = neighbor_mean(g, attr);
    let mut own = Vec::new();
    let mut friends = Vec::new();
    for (u, m) in means.into_iter().enumerate() {
        if let Some(m) = m {
            own.push(attr[u]);
            friends.push(m);
        }
    }
    (own, friends)
}

/// Degree assortativity: Pearson correlation of the degrees at either end of
/// each edge (Newman 2002). Positive values mean highly connected users
/// befriend other highly connected users.
pub fn degree_assortativity(g: &Csr) -> Option<f64> {
    degree_assortativity_jobs(g, 1)
}

/// [`degree_assortativity`] with the node range chunked over `jobs` scoped
/// threads. Degrees are u32-valued, so every accumulated term is an
/// integer-valued f64 and the running sums stay exact (far below 2^53 for
/// any graph this workspace handles); exact sums are associative, so the
/// chunked merge reproduces the serial result bit-for-bit.
pub fn degree_assortativity_jobs(g: &Csr, jobs: usize) -> Option<f64> {
    let partials = par::map_chunks(g.n_nodes(), jobs, |range| {
        let mut n = 0u64;
        let mut s = [0.0f64; 5]; // sx, sy, sxx, syy, sxy
        for u in range {
            let du = f64::from(g.degree(u as u32));
            for &v in g.neighbors(u as u32) {
                // Each undirected edge contributes both (du,dv) and (dv,du),
                // which symmetrizes the correlation.
                let dv = f64::from(g.degree(v));
                n += 1;
                s[0] += du;
                s[1] += dv;
                s[2] += du * du;
                s[3] += dv * dv;
                s[4] += du * dv;
            }
        }
        (n, s)
    });
    let mut n = 0u64;
    let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for (pn, s) in partials {
        n += pn;
        sx += s[0];
        sy += s[1];
        sxx += s[2];
        syy += s[3];
        sxy += s[4];
    }
    if n == 0 {
        return None;
    }
    let nf = n as f64;
    let cov = sxy / nf - (sx / nf) * (sy / nf);
    let vx = sxx / nf - (sx / nf) * (sx / nf);
    let vy = syy / nf - (sy / nf) * (sy / nf);
    if vx <= 0.0 || vy <= 0.0 {
        return None;
    }
    Some(cov / (vx * vy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbor_mean_simple() {
        // 0-1, 1-2; attr = [10, 20, 30]
        let g = Csr::from_edges(3, [(0, 1), (1, 2)].into_iter());
        let m = neighbor_mean(&g, &[10.0, 20.0, 30.0]);
        assert_eq!(m[0], Some(20.0));
        assert_eq!(m[1], Some(20.0)); // (10+30)/2
        assert_eq!(m[2], Some(20.0));
    }

    #[test]
    fn isolated_nodes_excluded() {
        let g = Csr::from_edges(3, [(0, 1)].into_iter());
        let m = neighbor_mean(&g, &[1.0, 2.0, 3.0]);
        assert_eq!(m[2], None);
        let (own, friends) = homophily_pairs(&g, &[1.0, 2.0, 3.0]);
        assert_eq!(own, vec![1.0, 2.0]);
        assert_eq!(friends, vec![2.0, 1.0]);
    }

    #[test]
    fn star_graph_is_disassortative() {
        // A star: hub degree n-1, leaves degree 1 → strongly negative.
        let edges: Vec<(u32, u32)> = (1..10u32).map(|i| (0, i)).collect();
        let g = Csr::from_edges(10, edges.into_iter());
        let r = degree_assortativity(&g).unwrap();
        assert!(r < -0.9, "assortativity = {r}");
    }

    #[test]
    fn regular_graph_assortativity_undefined() {
        // Cycle: every degree equal → zero variance → None.
        let g = Csr::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)].into_iter());
        assert!(degree_assortativity(&g).is_none());
    }

    #[test]
    fn two_cliques_bridged_is_assortative() {
        // Two 4-cliques joined by one edge: high-degree nodes mostly connect
        // to high-degree nodes.
        let mut edges = Vec::new();
        for c in [0u32, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((c + i, c + j));
                }
            }
        }
        edges.push((0, 4));
        let g = Csr::from_edges(8, edges.into_iter());
        let r = degree_assortativity(&g).unwrap();
        assert!(r < 0.0, "bridge nodes have higher degree than their clique peers: {r}");
    }

    #[test]
    fn empty_graph_returns_none() {
        let g = Csr::from_edges(3, std::iter::empty());
        assert!(degree_assortativity(&g).is_none());
    }

    #[test]
    fn parallel_passes_match_serial_bitwise() {
        use rand::prelude::*;
        let n_nodes = 500u32;
        let mut rng = StdRng::seed_from_u64(7);
        let edges: Vec<(u32, u32)> = (0..3_000)
            .map(|_| (rng.gen_range(0..n_nodes), rng.gen_range(0..n_nodes)))
            .collect();
        let g = Csr::from_edges(n_nodes as usize, edges.iter().copied());
        let attr: Vec<f64> = (0..n_nodes).map(|u| (u as f64).sqrt()).collect();

        let serial_r = degree_assortativity(&g).unwrap();
        let serial_m = neighbor_mean(&g, &attr);
        for jobs in [2, 3, 8] {
            let r = degree_assortativity_jobs(&g, jobs).unwrap();
            assert_eq!(r.to_bits(), serial_r.to_bits(), "jobs={jobs}");
            assert_eq!(neighbor_mean_jobs(&g, &attr, jobs), serial_m, "jobs={jobs}");
        }
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_attr_length_panics() {
        let g = Csr::from_edges(3, [(0, 1)].into_iter());
        neighbor_mean(&g, &[1.0]);
    }
}
