//! Friendship-graph evolution over time (Figures 1 and 2).
//!
//! Steam records friendship creation timestamps since September 2008. The
//! paper plots (i) cumulative users and friendships per year and (ii) the
//! friend-degree distribution both per-year ("2011 only") and cumulatively
//! ("through 2011").

use steam_model::{Friendship, SimTime};

/// One row of Figure 1: the state of the network at the end of a year.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct YearPoint {
    pub year: i32,
    /// Accounts created on or before Dec 31 of `year`.
    pub cumulative_users: u64,
    /// Friendships (with recorded timestamps) formed on or before that date.
    pub cumulative_friendships: u64,
    /// Friendships formed during `year` alone.
    pub new_friendships: u64,
}

/// Computes Figure 1's series from account creation times and timestamped
/// edges, for years `first..=last` inclusive.
pub fn yearly_evolution(
    account_created: &[SimTime],
    friendships: &[Friendship],
    first: i32,
    last: i32,
) -> Vec<YearPoint> {
    yearly_evolution_with(
        account_created,
        |f| {
            for e in friendships {
                f(e);
            }
        },
        first,
        last,
    )
}

/// [`yearly_evolution`] with edges supplied by a visitor instead of a slice,
/// so the streaming snapshot path can feed chunks without materializing the
/// edge list. The slice version delegates here — one counting loop, both
/// paths, identical results.
pub fn yearly_evolution_with<F>(
    account_created: &[SimTime],
    visit_edges: F,
    first: i32,
    last: i32,
) -> Vec<YearPoint>
where
    F: Fn(&mut dyn FnMut(&Friendship)),
{
    assert!(first <= last);
    let n_years = (last - first + 1) as usize;
    let mut users = vec![0u64; n_years];
    let mut edges_new = vec![0u64; n_years];
    let mut users_before = 0u64;
    let mut edges_before = 0u64;

    for t in account_created {
        let y = t.year();
        if y < first {
            users_before += 1;
        } else if y <= last {
            users[(y - first) as usize] += 1;
        }
    }
    visit_edges(&mut |e| {
        let y = e.created_at.year();
        if y < first {
            edges_before += 1;
        } else if y <= last {
            edges_new[(y - first) as usize] += 1;
        }
    });

    let mut out = Vec::with_capacity(n_years);
    let mut cu = users_before;
    let mut ce = edges_before;
    for i in 0..n_years {
        cu += users[i];
        ce += edges_new[i];
        out.push(YearPoint {
            year: first + i as i32,
            cumulative_users: cu,
            cumulative_friendships: ce,
            new_friendships: edges_new[i],
        });
    }
    out
}

/// Per-node degree counting only edges created in `[from, to]` (inclusive,
/// by calendar year). Passing `i32::MIN` as `from` gives the "through year"
/// cumulative variant of Figure 2.
pub fn degrees_in_years(
    n_nodes: usize,
    friendships: &[Friendship],
    from: i32,
    to: i32,
) -> Vec<u32> {
    degrees_in_years_with(
        n_nodes,
        |f| {
            for e in friendships {
                f(e);
            }
        },
        from,
        to,
    )
}

/// [`degrees_in_years`] with edges supplied by a visitor instead of a slice
/// (see [`yearly_evolution_with`]).
pub fn degrees_in_years_with<F>(n_nodes: usize, visit_edges: F, from: i32, to: i32) -> Vec<u32>
where
    F: Fn(&mut dyn FnMut(&Friendship)),
{
    let mut deg = vec![0u32; n_nodes];
    visit_edges(&mut |e| {
        let y = e.created_at.year();
        if y >= from && y <= to {
            deg[e.a as usize] += 1;
            deg[e.b as usize] += 1;
        }
    });
    deg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(y: i32) -> SimTime {
        SimTime::from_ymd(y, 6, 15)
    }

    #[test]
    fn cumulative_counts() {
        let created = vec![t(2008), t(2009), t(2009), t(2011)];
        let edges = vec![
            Friendship::new(0, 1, t(2009)),
            Friendship::new(0, 2, t(2010)),
            Friendship::new(1, 2, t(2010)),
            Friendship::new(0, 3, t(2011)),
        ];
        let ev = yearly_evolution(&created, &edges, 2008, 2011);
        assert_eq!(ev.len(), 4);
        assert_eq!(ev[0], YearPoint { year: 2008, cumulative_users: 1, cumulative_friendships: 0, new_friendships: 0 });
        assert_eq!(ev[1].cumulative_users, 3);
        assert_eq!(ev[1].cumulative_friendships, 1);
        assert_eq!(ev[2].cumulative_friendships, 3);
        assert_eq!(ev[2].new_friendships, 2);
        assert_eq!(ev[3].cumulative_users, 4);
        assert_eq!(ev[3].cumulative_friendships, 4);
    }

    #[test]
    fn pre_window_counts_roll_in() {
        let created = vec![t(2005), t(2010)];
        let edges = vec![Friendship::new(0, 1, t(2006))];
        let ev = yearly_evolution(&created, &edges, 2009, 2010);
        assert_eq!(ev[0].cumulative_users, 1);
        assert_eq!(ev[0].cumulative_friendships, 1);
        assert_eq!(ev[0].new_friendships, 0);
        assert_eq!(ev[1].cumulative_users, 2);
    }

    #[test]
    fn degrees_filtered_by_year() {
        let edges = vec![
            Friendship::new(0, 1, t(2009)),
            Friendship::new(0, 2, t(2010)),
            Friendship::new(1, 2, t(2012)),
        ];
        // 2010 only.
        assert_eq!(degrees_in_years(3, &edges, 2010, 2010), vec![1, 0, 1]);
        // Through 2010.
        assert_eq!(degrees_in_years(3, &edges, i32::MIN, 2010), vec![2, 1, 1]);
        // Everything.
        assert_eq!(degrees_in_years(3, &edges, i32::MIN, i32::MAX), vec![2, 2, 2]);
    }

    #[test]
    fn monotone_cumulative_series() {
        let created: Vec<SimTime> = (0..50).map(|i| t(2008 + (i % 6))).collect();
        let edges: Vec<Friendship> = (0..40u32)
            .map(|i| Friendship::new(i, i + 1, t(2008 + (i as i32 % 6))))
            .collect();
        let ev = yearly_evolution(&created, &edges, 2008, 2013);
        for w in ev.windows(2) {
            assert!(w[1].cumulative_users >= w[0].cumulative_users);
            assert!(w[1].cumulative_friendships >= w[0].cumulative_friendships);
        }
        assert_eq!(ev.last().unwrap().cumulative_friendships, 40);
    }
}
