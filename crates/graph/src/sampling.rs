//! Crawler-sampling models — the §2.2 methodological point.
//!
//! Becker et al. and Blackburn et al. sampled Steam by *crawling outward
//! from seeds through friend lists*, which can only reach the connected
//! component of the seeds and reaches high-degree users earlier; the paper's
//! census avoids that bias. These functions simulate both collection modes
//! so the bias is measurable (see `steam-analysis::sampling_bias`).

use crate::csr::Csr;

/// BFS crawl from `seeds`, stopping once `budget` users are collected —
/// the prior studies' collection model. Returns collected node ids in
/// discovery order.
pub fn bfs_crawl(g: &Csr, seeds: &[u32], budget: usize) -> Vec<u32> {
    let mut seen = vec![false; g.n_nodes()];
    let mut out = Vec::with_capacity(budget.min(g.n_nodes()));
    let mut queue = std::collections::VecDeque::new();
    for &s in seeds {
        if !seen[s as usize] {
            seen[s as usize] = true;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        if out.len() >= budget {
            break;
        }
        out.push(u);
        for &v in g.neighbors(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    out
}

/// Census "crawl": every `stride`-th node of the ID space (an unbiased
/// systematic sample standing in for the paper's full enumeration).
pub fn census_sample(g: &Csr, stride: usize) -> Vec<u32> {
    (0..g.n_nodes() as u32).step_by(stride.max(1)).collect()
}

/// Degree statistics of a node sample: `(mean degree, isolated share)`.
pub fn sample_degree_stats(g: &Csr, sample: &[u32]) -> (f64, f64) {
    if sample.is_empty() {
        return (0.0, 0.0);
    }
    let total: u64 = sample.iter().map(|&u| u64::from(g.degree(u))).sum();
    let isolated = sample.iter().filter(|&&u| g.degree(u) == 0).count();
    (
        total as f64 / sample.len() as f64,
        isolated as f64 / sample.len() as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Star + isolated satellites: the BFS crawl reaches the star only.
    fn biased_world() -> Csr {
        let mut edges: Vec<(u32, u32)> = (1..6u32).map(|i| (0, i)).collect();
        edges.push((1, 2));
        // nodes 6..10 isolated
        Csr::from_edges(10, edges.into_iter())
    }

    #[test]
    fn bfs_crawl_respects_budget_and_connectivity() {
        let g = biased_world();
        let crawl = bfs_crawl(&g, &[0], 100);
        assert_eq!(crawl.len(), 6, "only the connected component is reachable");
        assert_eq!(crawl[0], 0);
        let crawl3 = bfs_crawl(&g, &[0], 3);
        assert_eq!(crawl3.len(), 3);
    }

    #[test]
    fn bfs_crawl_never_reaches_isolates() {
        let g = biased_world();
        let crawl = bfs_crawl(&g, &[0], 100);
        assert!(crawl.iter().all(|&u| u < 6));
    }

    #[test]
    fn census_covers_isolates() {
        let g = biased_world();
        let census = census_sample(&g, 1);
        assert_eq!(census.len(), 10);
        let (census_mean, census_isolated) = sample_degree_stats(&g, &census);
        let (crawl_mean, crawl_isolated) = sample_degree_stats(&g, &bfs_crawl(&g, &[0], 100));
        // The crawl overstates connectivity: higher mean degree, zero
        // isolated share — exactly the §2.2 bias.
        assert!(crawl_mean > census_mean);
        assert_eq!(crawl_isolated, 0.0);
        assert!(census_isolated > 0.3);
    }

    #[test]
    fn multiple_seeds_dedupe() {
        let g = biased_world();
        let crawl = bfs_crawl(&g, &[0, 0, 1], 100);
        let set: std::collections::HashSet<u32> = crawl.iter().copied().collect();
        assert_eq!(set.len(), crawl.len());
    }

    #[test]
    fn empty_inputs() {
        let g = biased_world();
        assert!(bfs_crawl(&g, &[], 10).is_empty());
        assert_eq!(sample_degree_stats(&g, &[]), (0.0, 0.0));
    }
}
