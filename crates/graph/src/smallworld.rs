//! Small-world characteristics (§2.2: Becker et al. found the Steam
//! friendship graph exhibits small-world structure — high clustering with
//! short paths).
//!
//! Exact all-pairs paths are infeasible at network scale, so both metrics
//! are estimated by deterministic sampling: clustering over a node sample,
//! path lengths over a source sample of BFS runs.

use crate::components::connected_components;
use crate::csr::Csr;

/// Local clustering coefficient of one node: the fraction of its neighbor
/// pairs that are themselves connected. `None` for degree < 2.
pub fn local_clustering(g: &Csr, u: u32) -> Option<f64> {
    let ns = g.neighbors(u);
    let k = ns.len();
    if k < 2 {
        return None;
    }
    let mut closed = 0u64;
    for (i, &a) in ns.iter().enumerate() {
        for &b in &ns[i + 1..] {
            if g.has_edge(a, b) {
                closed += 1;
            }
        }
    }
    Some(closed as f64 / (k * (k - 1) / 2) as f64)
}

/// Mean local clustering over up to `sample` evenly spaced nodes with
/// degree ≥ 2. Deterministic (stride sampling).
pub fn mean_clustering(g: &Csr, sample: usize) -> Option<f64> {
    let candidates: Vec<u32> =
        (0..g.n_nodes() as u32).filter(|&u| g.degree(u) >= 2).collect();
    if candidates.is_empty() {
        return None;
    }
    let stride = (candidates.len() / sample.max(1)).max(1);
    let mut total = 0.0;
    let mut n = 0usize;
    for &u in candidates.iter().step_by(stride) {
        if let Some(c) = local_clustering(g, u) {
            total += c;
            n += 1;
        }
    }
    (n > 0).then(|| total / n as f64)
}

/// BFS distances from `src`; unreachable nodes stay `u32::MAX`.
fn bfs_distances(g: &Csr, src: u32) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.n_nodes()];
    dist[src as usize] = 0;
    let mut queue = std::collections::VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        let d = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = d + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Small-world summary over the giant component.
#[derive(Clone, Copy, Debug)]
pub struct SmallWorld {
    /// Mean local clustering coefficient (sampled).
    pub clustering: f64,
    /// Mean shortest-path length within the giant component (sampled).
    pub mean_path: f64,
    /// Diameter lower bound (max distance seen in the sample).
    pub diameter_lb: u32,
    /// Fraction of nodes in the giant component.
    pub giant_fraction: f64,
}

/// Estimates small-world metrics from `sources` BFS runs and a clustering
/// sample of the same size.
pub fn small_world(g: &Csr, sources: usize) -> Option<SmallWorld> {
    if g.n_nodes() == 0 || g.n_edges() == 0 {
        return None;
    }
    let comps = connected_components(g);
    let giant = comps
        .sizes
        .iter()
        .enumerate()
        .max_by_key(|(_, &s)| s)
        .map(|(i, _)| i as u32)?;
    let members: Vec<u32> = (0..g.n_nodes() as u32)
        .filter(|&u| comps.label[u as usize] == giant)
        .collect();
    if members.len() < 2 {
        return None;
    }
    let stride = (members.len() / sources.max(1)).max(1);
    let mut total = 0u64;
    let mut pairs = 0u64;
    let mut diameter = 0u32;
    for &src in members.iter().step_by(stride) {
        let dist = bfs_distances(g, src);
        for &u in &members {
            let d = dist[u as usize];
            if d != u32::MAX && d > 0 {
                total += u64::from(d);
                pairs += 1;
                diameter = diameter.max(d);
            }
        }
    }
    Some(SmallWorld {
        clustering: mean_clustering(g, sources).unwrap_or(0.0),
        mean_path: total as f64 / pairs.max(1) as f64,
        diameter_lb: diameter,
        giant_fraction: comps.largest_fraction(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_has_full_clustering() {
        let g = Csr::from_edges(3, [(0, 1), (1, 2), (0, 2)].into_iter());
        assert_eq!(local_clustering(&g, 0), Some(1.0));
        assert_eq!(mean_clustering(&g, 10), Some(1.0));
    }

    #[test]
    fn star_has_zero_clustering() {
        let g = Csr::from_edges(4, [(0, 1), (0, 2), (0, 3)].into_iter());
        assert_eq!(local_clustering(&g, 0), Some(0.0));
        // Leaves have degree 1 → None.
        assert_eq!(local_clustering(&g, 1), None);
    }

    #[test]
    fn path_lengths_on_a_path() {
        // 0-1-2-3: mean distance from 0 is (1+2+3)/3 = 2.
        let g = Csr::from_edges(4, [(0, 1), (1, 2), (2, 3)].into_iter());
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3]);
        let sw = small_world(&g, 4).unwrap();
        assert_eq!(sw.diameter_lb, 3);
        assert_eq!(sw.giant_fraction, 1.0);
        assert!(sw.mean_path > 1.0 && sw.mean_path < 3.0);
    }

    #[test]
    fn giant_component_only() {
        // Big triangle + far-away edge; BFS must stay in the giant side.
        let g = Csr::from_edges(6, [(0, 1), (1, 2), (0, 2), (0, 3), (4, 5)].into_iter());
        let sw = small_world(&g, 6).unwrap();
        assert!((sw.giant_fraction - 4.0 / 6.0).abs() < 1e-12);
        assert!(sw.mean_path < 3.0);
    }

    #[test]
    fn degenerate_graphs() {
        let empty = Csr::from_edges(0, std::iter::empty());
        assert!(small_world(&empty, 4).is_none());
        let edgeless = Csr::from_edges(5, std::iter::empty());
        assert!(small_world(&edgeless, 4).is_none());
        assert!(mean_clustering(&edgeless, 4).is_none());
    }

    #[test]
    fn clique_is_maximally_small_world() {
        let mut edges = Vec::new();
        for i in 0..8u32 {
            for j in (i + 1)..8 {
                edges.push((i, j));
            }
        }
        let g = Csr::from_edges(8, edges.into_iter());
        let sw = small_world(&g, 8).unwrap();
        assert_eq!(sw.clustering, 1.0);
        assert_eq!(sw.diameter_lb, 1);
        assert!((sw.mean_path - 1.0).abs() < 1e-12);
    }
}
