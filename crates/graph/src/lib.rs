//! # steam-graph
//!
//! Friendship-graph analytics for the *Condensing Steam* (IMC 2016)
//! reproduction:
//!
//! * [`csr`] — compressed sparse row adjacency (the paper's graph has
//!   ~196 M undirected edges; neighbor scans must be flat-array walks);
//! * [`components`] — connected components by iterative BFS (§2.2's
//!   crawler-bias discussion concerns the giant component);
//! * [`neighbors`] — neighbor-average attributes and degree assortativity
//!   (the §7 homophily correlations and Figure 11);
//! * [`evolution`] — time-resolved user/friendship growth and per-year
//!   degree distributions (Figures 1 and 2);
//! * [`smallworld`] — clustering/path-length estimates (the small-world
//!   structure Becker et al. reported, §2.2);
//! * [`sampling`] — BFS-crawl vs census sampling models (the §2.2
//!   crawler-bias argument, made measurable).

pub mod components;
pub mod csr;
pub mod evolution;
pub mod neighbors;
pub mod par;
pub mod sampling;
pub mod smallworld;

pub use components::{connected_components, Components};
pub use csr::{Csr, EdgeChunks};
pub use evolution::{
    degrees_in_years, degrees_in_years_with, yearly_evolution, yearly_evolution_with, YearPoint,
};
pub use neighbors::{
    degree_assortativity, degree_assortativity_jobs, homophily_pairs, neighbor_mean,
    neighbor_mean_jobs,
};
pub use sampling::{bfs_crawl, census_sample, sample_degree_stats};
pub use smallworld::{local_clustering, mean_clustering, small_world, SmallWorld};
