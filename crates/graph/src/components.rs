//! Connected components (iterative BFS — the graph is far too large for
//! recursion) and component-size summaries.

use crate::csr::Csr;

/// Component labeling: `label[u]` is the component id of node `u`, ids are
/// dense `0..n_components`, assigned in order of lowest member node.
#[derive(Clone, Debug)]
pub struct Components {
    pub label: Vec<u32>,
    pub sizes: Vec<u64>,
}

impl Components {
    pub fn n_components(&self) -> usize {
        self.sizes.len()
    }

    /// Size of the largest component (0 for an empty graph).
    pub fn largest(&self) -> u64 {
        self.sizes.iter().copied().max().unwrap_or(0)
    }

    /// Fraction of nodes in the largest component — prior Steam crawls
    /// (Becker et al.) could only reach this component; our census covers
    /// everything, which is exactly the sampling-bias point §2.2 makes.
    pub fn largest_fraction(&self) -> f64 {
        let total: u64 = self.sizes.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.largest() as f64 / total as f64
        }
    }
}

/// Labels connected components by BFS.
pub fn connected_components(g: &Csr) -> Components {
    let n = g.n_nodes();
    let mut label = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n as u32 {
        if label[start as usize] != u32::MAX {
            continue;
        }
        let comp = sizes.len() as u32;
        let mut size = 0u64;
        label[start as usize] = comp;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            size += 1;
            for &v in g.neighbors(u) {
                if label[v as usize] == u32::MAX {
                    label[v as usize] = comp;
                    queue.push_back(v);
                }
            }
        }
        sizes.push(size);
    }
    Components { label, sizes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_components_and_isolate() {
        // {0,1,2} path, {3,4} edge, {5} isolate
        let g = Csr::from_edges(6, [(0, 1), (1, 2), (3, 4)].into_iter());
        let c = connected_components(&g);
        assert_eq!(c.n_components(), 3);
        assert_eq!(c.sizes, vec![3, 2, 1]);
        assert_eq!(c.largest(), 3);
        assert!((c.largest_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(c.label[0], c.label[2]);
        assert_ne!(c.label[0], c.label[3]);
        assert_ne!(c.label[3], c.label[5]);
    }

    #[test]
    fn fully_connected() {
        let g = Csr::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)].into_iter());
        let c = connected_components(&g);
        assert_eq!(c.n_components(), 1);
        assert_eq!(c.largest_fraction(), 1.0);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, std::iter::empty());
        let c = connected_components(&g);
        assert_eq!(c.n_components(), 0);
        assert_eq!(c.largest(), 0);
        assert_eq!(c.largest_fraction(), 0.0);
    }

    #[test]
    fn long_path_does_not_overflow_stack() {
        // 200k-node path: recursion would blow the stack; BFS must not.
        let n = 200_000u32;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = Csr::from_edges(n as usize, edges.into_iter());
        let c = connected_components(&g);
        assert_eq!(c.n_components(), 1);
        assert_eq!(c.largest(), u64::from(n));
    }
}
