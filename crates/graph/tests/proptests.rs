//! Property tests for graph invariants.

use proptest::collection::vec;
use proptest::prelude::*;

use steam_graph::{
    bfs_crawl, connected_components, degree_assortativity, mean_clustering, neighbor_mean,
    small_world, Csr,
};

/// Random edge list over `n` nodes with no duplicate undirected edges.
fn arb_graph(max_nodes: u32) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..max_nodes).prop_flat_map(move |n| {
        vec((0..n, 0..n), 0..(n as usize * 2)).prop_map(move |raw| {
            let mut seen = std::collections::HashSet::new();
            let edges: Vec<(u32, u32)> = raw
                .into_iter()
                .filter_map(|(a, b)| {
                    if a == b {
                        return None;
                    }
                    let key = (a.min(b), a.max(b));
                    seen.insert(key).then_some(key)
                })
                .collect();
            (n as usize, edges)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn handshake_lemma((n, edges) in arb_graph(80)) {
        let g = Csr::from_edges(n, edges.iter().copied());
        let deg_sum: u64 = g.degrees().iter().map(|&d| u64::from(d)).sum();
        prop_assert_eq!(deg_sum, 2 * g.n_edges() as u64);
    }

    #[test]
    fn adjacency_is_symmetric((n, edges) in arb_graph(60)) {
        let g = Csr::from_edges(n, edges.iter().copied());
        for u in 0..n as u32 {
            for &v in g.neighbors(u) {
                prop_assert!(g.has_edge(v, u), "asymmetric edge {u}-{v}");
            }
        }
    }

    #[test]
    fn component_sizes_partition_nodes((n, edges) in arb_graph(80)) {
        let g = Csr::from_edges(n, edges.iter().copied());
        let c = connected_components(&g);
        let total: u64 = c.sizes.iter().sum();
        prop_assert_eq!(total, n as u64);
        // Every labeled node's component id is valid.
        for &l in &c.label {
            prop_assert!((l as usize) < c.n_components());
        }
        // Endpoints of every edge share a component.
        for (a, b) in &edges {
            prop_assert_eq!(c.label[*a as usize], c.label[*b as usize]);
        }
    }

    #[test]
    fn assortativity_bounded((n, edges) in arb_graph(60)) {
        let g = Csr::from_edges(n, edges.iter().copied());
        if let Some(r) = degree_assortativity(&g) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
        }
    }

    #[test]
    fn small_world_metrics_bounded((n, edges) in arb_graph(60)) {
        let g = Csr::from_edges(n, edges.iter().copied());
        if let Some(c) = mean_clustering(&g, 16) {
            prop_assert!((0.0..=1.0).contains(&c), "clustering = {c}");
        }
        if let Some(sw) = small_world(&g, 8) {
            prop_assert!(sw.mean_path >= 1.0, "{sw:?}");
            prop_assert!(sw.diameter_lb as f64 >= sw.mean_path.floor(), "{sw:?}");
            prop_assert!((0.0..=1.0).contains(&sw.giant_fraction));
        }
    }

    #[test]
    fn bfs_crawl_is_bounded_and_connected((n, edges) in arb_graph(60), budget in 1usize..100) {
        let g = Csr::from_edges(n, edges.iter().copied());
        let crawl = bfs_crawl(&g, &[0], budget);
        prop_assert!(crawl.len() <= budget);
        // Everything reached (except the seed) has a neighbor inside the
        // crawl's discovery set closure.
        let comps = connected_components(&g);
        for &u in &crawl {
            prop_assert_eq!(comps.label[u as usize], comps.label[0]);
        }
    }

    #[test]
    fn neighbor_mean_within_attr_range((n, edges) in arb_graph(60), lo in -100.0f64..0.0, span in 1.0f64..100.0) {
        let g = Csr::from_edges(n, edges.iter().copied());
        let attr: Vec<f64> = (0..n).map(|i| lo + span * (i as f64 / n as f64)).collect();
        let lo_v = attr.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi_v = attr.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for m in neighbor_mean(&g, &attr).into_iter().flatten() {
            prop_assert!(m >= lo_v - 1e-9 && m <= hi_v + 1e-9);
        }
    }
}
