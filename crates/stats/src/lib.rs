//! # steam-stats
//!
//! Statistics substrate for the *Condensing Steam* (IMC 2016) reproduction:
//!
//! * [`ecdf`] — empirical CDFs, CCDF plot points, percentiles (Table 3);
//! * [`hist`] — linear and log-binned histograms (the figures' axes);
//! * [`spearman`](mod@spearman) — Spearman rank correlation with ties (§7);
//! * [`pareto`] — concentration shares, Lorenz curves, Gini (§6.1's 80-20);
//! * [`tailfit`] — the heavy-tail classification pipeline reimplementing the
//!   Python `powerlaw` package's fits and likelihood-ratio tests (§3.3,
//!   Appendix, Table 4);
//! * [`summary`] — means/medians/modes (§9's achievement statistics);
//! * [`special`] — the special functions the fitters need;
//! * [`par`] — the scoped-thread fan-out behind the `_jobs` kernel variants
//!   (deterministic: chunk results always reduce in index order).
//!
//! All of it is deterministic, dependency-free (std only) and tested against
//! closed-form cases and synthetic samples with known parameters.

pub mod ecdf;
pub mod hist;
pub mod par;
pub mod pareto;
pub mod special;
pub mod spearman;
pub mod summary;
pub mod tailfit;

pub use ecdf::{table3_percentiles, Ecdf};
pub use hist::{frequency_u32, LinearHistogram, LogHistogram};
pub use pareto::{gini, lorenz_curve, top_share};
pub use spearman::{pearson, spearman, CorrelationStrength};
pub use tailfit::{classify_tail, classify_tail_jobs, ClassifyOptions, TailClass, TailReport};
