//! Basic summary statistics: mean, variance, median, mode.
//!
//! §9 of the paper reports achievement counts via mode / mean / median
//! together, precisely because heavy-tailed data make any single summary
//! misleading.

/// Arithmetic mean; `None` for empty input.
pub fn mean(data: &[f64]) -> Option<f64> {
    if data.is_empty() {
        return None;
    }
    Some(data.iter().sum::<f64>() / data.len() as f64)
}

/// Unbiased sample variance; `None` for fewer than two points.
pub fn variance(data: &[f64]) -> Option<f64> {
    if data.len() < 2 {
        return None;
    }
    let m = mean(data)?;
    let ss: f64 = data.iter().map(|x| (x - m) * (x - m)).sum();
    Some(ss / (data.len() - 1) as f64)
}

/// Sample standard deviation.
pub fn std_dev(data: &[f64]) -> Option<f64> {
    variance(data).map(f64::sqrt)
}

/// Median (averaging the two middle elements for even lengths).
/// Sorts a copy; `None` for empty input.
pub fn median(data: &[f64]) -> Option<f64> {
    if data.is_empty() {
        return None;
    }
    let mut v = data.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    Some(if n % 2 == 1 { v[n / 2] } else { (v[n / 2 - 1] + v[n / 2]) / 2.0 })
}

/// Mode of integer-valued data (smallest value on ties); `None` when empty.
pub fn mode_u32(data: &[u32]) -> Option<u32> {
    if data.is_empty() {
        return None;
    }
    let mut counts = std::collections::HashMap::new();
    for &x in data {
        *counts.entry(x).or_insert(0u64) += 1;
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .map(|(v, _)| v)
}

/// Weighted share: what fraction of `total` the given values represent.
pub fn share(part: f64, total: f64) -> f64 {
    if total == 0.0 {
        0.0
    } else {
        part / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let d = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&d), Some(5.0));
        assert!((variance(&d).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!(mean(&[]).is_none());
        assert!(variance(&[1.0]).is_none());
    }

    #[test]
    fn median_even_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert!(median(&[]).is_none());
    }

    #[test]
    fn mode_picks_most_frequent() {
        assert_eq!(mode_u32(&[1, 2, 2, 3, 3, 3]), Some(3));
        // Tie → smallest.
        assert_eq!(mode_u32(&[5, 5, 9, 9]), Some(5));
        assert_eq!(mode_u32(&[]), None);
    }

    #[test]
    fn share_handles_zero_total() {
        assert_eq!(share(1.0, 0.0), 0.0);
        assert_eq!(share(1.0, 4.0), 0.25);
    }
}
