//! Special mathematical functions needed by the tail-fitting machinery.
//!
//! We implement only what the fitters use — log-gamma, the error function
//! pair, the standard normal CDF, and the upper incomplete gamma function
//! (including negative first arguments, which appear in the truncated
//! power-law normalization `Γ(1-α, λ·x_min)` with `α > 1`).

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
///
/// Accurate to ~1e-13 over the positive reals; negative non-integer inputs
/// are handled via the reflection formula.
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    // Published Lanczos coefficients, kept verbatim even where they exceed
    // f64 precision so they can be checked against the reference table.
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx)
        let s = (std::f64::consts::PI * x).sin();
        if s == 0.0 {
            return f64::INFINITY; // pole at non-positive integers
        }
        return std::f64::consts::PI.ln() - s.abs().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// The error function.
///
/// Maclaurin series for |x| < 2.5 (converges to machine precision there),
/// `1 - erfc_cf(x)` beyond. Accuracy ~1e-14 everywhere.
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        return -erf(-x);
    }
    if x >= 2.5 {
        return 1.0 - erfc_cf(x);
    }
    // erf(x) = 2/√π Σ (-1)^n x^{2n+1} / (n! (2n+1))
    let mut term = x;
    let mut sum = x;
    for n in 1..200 {
        term *= -x * x / n as f64;
        let add = term / (2.0 * n as f64 + 1.0);
        sum += add;
        if add.abs() < 1e-17 * sum.abs().max(1e-300) {
            break;
        }
    }
    2.0 / std::f64::consts::PI.sqrt() * sum
}

/// The complementary error function. Accuracy ~1e-14.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x < 2.5 {
        1.0 - erf(x)
    } else {
        erfc_cf(x)
    }
}

/// Continued-fraction evaluation of erfc for x > 3 (backward recurrence):
/// erfc(x) = e^{-x²}/√π · 1/(x + (1/2)/(x + 1/(x + (3/2)/(x + 2/(x + …)))))
/// with partial numerators a_k = k/2.
fn erfc_cf(x: f64) -> f64 {
    let mut f = 0.0;
    for k in (1..=80).rev() {
        f = (k as f64 / 2.0) / (x + f);
    }
    (-x * x).exp() / (std::f64::consts::PI.sqrt() * (x + f))
}

/// Standard normal cumulative distribution function.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Two-sided p-value for a standard-normal test statistic.
pub fn two_sided_p(z: f64) -> f64 {
    erfc(z.abs() / std::f64::consts::SQRT_2)
}

/// Upper incomplete gamma function Γ(s, x) for x > 0 and any real s.
///
/// For s ≤ 0 (which arises in the truncated power-law normalization with
/// α > 1) the recurrence Γ(s, x) = (Γ(s+1, x) − xˢ e^{−x}) / s is applied
/// until the argument is positive, then the positive-argument machinery
/// (series for x < s+1, continued fraction otherwise) takes over.
pub fn upper_gamma(s: f64, x: f64) -> f64 {
    assert!(x > 0.0, "upper_gamma requires x > 0 (got {x})");
    if s.abs() < 1e-12 {
        // Γ(0, x) is the exponential integral E₁(x); the recurrence below
        // would divide by s.
        return expint_e1(x);
    }
    if s < 0.0 {
        // Recurse upward: Γ(s,x) = (Γ(s+1,x) - x^s e^{-x}) / s
        let above = upper_gamma(s + 1.0, x);
        return (above - x.powf(s) * (-x).exp()) / s;
    }
    if x < s + 1.0 {
        // Γ(s,x) = Γ(s) - γ(s,x), lower via series.
        let g = ln_gamma(s).exp();
        g - lower_gamma_series(s, x)
    } else {
        upper_gamma_cf(s, x)
    }
}

/// Natural log of Γ(s, x) — avoids under/overflow for large λ·x_min terms.
/// Only valid where Γ(s, x) > 0 (always true for x > 0).
pub fn ln_upper_gamma(s: f64, x: f64) -> f64 {
    let v = upper_gamma(s, x);
    if v > 0.0 && v.is_finite() {
        v.ln()
    } else if v == 0.0 {
        // Underflow: use asymptotic Γ(s,x) ≈ x^{s-1} e^{-x} for large x.
        (s - 1.0) * x.ln() - x
    } else {
        f64::NAN
    }
}

/// The exponential integral E₁(x) = Γ(0, x), x > 0.
///
/// Series with the Euler–Mascheroni constant for x ≤ 1, continued fraction
/// for x > 1.
pub fn expint_e1(x: f64) -> f64 {
    const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;
    assert!(x > 0.0, "expint_e1 requires x > 0");
    if x <= 1.0 {
        // E₁(x) = -γ - ln x + Σ_{k≥1} (-1)^{k+1} x^k / (k·k!)
        let mut sum = 0.0;
        let mut term = 1.0;
        for k in 1..200 {
            term *= -x / k as f64;
            let add = -term / k as f64;
            sum += add;
            if add.abs() < 1e-17 * sum.abs().max(1e-300) {
                break;
            }
        }
        -EULER_GAMMA - x.ln() + sum
    } else {
        // Lentz continued fraction: E₁(x) = e^{-x}·CF.
        upper_gamma_cf(0.0, x)
    }
}

/// Lower incomplete gamma via its power series (for x < s + 1).
fn lower_gamma_series(s: f64, x: f64) -> f64 {
    let mut sum = 1.0 / s;
    let mut term = sum;
    for k in 1..500 {
        term *= x / (s + k as f64);
        sum += term;
        if term.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + s * x.ln()).exp()
}

/// Upper incomplete gamma via Lentz's continued fraction (for x ≥ s + 1).
fn upper_gamma_cf(s: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let mut b = x + 1.0 - s;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - s);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + s * x.ln()).exp() * h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "{a} vs {b} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let facts: [f64; 8] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (i, f) in facts.iter().enumerate() {
            close(ln_gamma((i + 1) as f64), f.ln(), 1e-12);
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(3/2) = √π/2
        close(ln_gamma(1.5), (std::f64::consts::PI.sqrt() / 2.0).ln(), 1e-12);
    }

    #[test]
    fn ln_gamma_reflection_negative() {
        // Γ(-0.5) = -2√π
        let v = ln_gamma(-0.5);
        close(v, (2.0 * std::f64::consts::PI.sqrt()).ln(), 1e-10);
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-12);
        close(erf(1.0), 0.842_700_792_949_714_9, 2e-7);
        close(erf(2.0), 0.995_322_265_018_952_7, 2e-7);
        close(erf(-1.0), -0.842_700_792_949_714_9, 2e-7);
    }

    #[test]
    fn erfc_tail_accuracy() {
        // erfc(3) = 2.209e-5, erfc(5) = 1.537e-12 (known values).
        close(erfc(3.0), 2.209_049_699_858_544e-5, 1e-4);
        close(erfc(5.0), 1.537_459_794_428_035e-12, 1e-3);
        // Symmetry erfc(-x) = 2 - erfc(x).
        close(erfc(-1.0) + erfc(1.0), 2.0, 1e-12);
    }

    #[test]
    fn normal_cdf_basics() {
        close(std_normal_cdf(0.0), 0.5, 1e-12);
        close(std_normal_cdf(1.959_963_984_540_054), 0.975, 1e-5);
        close(std_normal_cdf(-1.959_963_984_540_054), 0.025, 1e-5);
    }

    #[test]
    fn two_sided_p_at_significance_boundary() {
        // z = 1.96 → p ≈ 0.05
        let p = two_sided_p(1.959_963_984_540_054);
        close(p, 0.05, 1e-4);
    }

    #[test]
    fn upper_gamma_integer_cases() {
        // Γ(1, x) = e^{-x}
        for x in [0.5, 1.0, 2.0, 10.0] {
            close(upper_gamma(1.0, x), (-x).exp(), 1e-10);
        }
        // Γ(2, x) = (x + 1) e^{-x}
        for x in [0.5, 1.0, 5.0] {
            close(upper_gamma(2.0, x), (x + 1.0) * (-x).exp(), 1e-10);
        }
    }

    #[test]
    fn upper_gamma_negative_s() {
        // Γ(-1, x) = E_2(x)/x = (e^{-x} - x Γ(0,x)) ... use identity:
        // Γ(-1, x) = (Γ(0,x) - e^{-x}/x)·(-1) => check against recurrence
        // numerically via integration-free known value Γ(-0.5, 1):
        // Wolfram: Γ(-1/2, 1) ≈ 0.17814771178156069
        close(upper_gamma(-0.5, 1.0), 0.178_147_711_781_560_7, 1e-8);
        // Γ(-1, 1) ≈ 0.14849550677592205
        close(upper_gamma(-1.0, 1.0), 0.148_495_506_775_922_05, 1e-8);
    }

    #[test]
    fn upper_gamma_matches_e1() {
        // Γ(0, x) is the exponential integral E₁(x); E₁(1) ≈ 0.21938393439552026
        close(upper_gamma(0.0, 1.0), 0.219_383_934_395_520_26, 1e-8);
    }

    #[test]
    fn ln_upper_gamma_handles_underflow() {
        // Large x would underflow Γ(s,x); the log form must stay finite.
        let v = ln_upper_gamma(0.5, 800.0);
        assert!(v.is_finite());
        // Asymptotically ln Γ(s,x) ≈ (s-1) ln x - x
        close(v, -0.5 * 800f64.ln() - 800.0, 1e-2);
    }

    #[test]
    fn lower_plus_upper_equals_gamma() {
        for s in [0.5, 1.3, 2.7, 5.0] {
            for x in [0.3, 1.0, 4.0] {
                let total = lower_gamma_series(s, x) + upper_gamma(s, x);
                close(total, ln_gamma(s).exp(), 1e-8);
            }
        }
    }
}
