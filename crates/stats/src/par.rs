//! Scoped-thread fan-out used by the parallel statistics kernels.
//!
//! Every parallel entry point in this crate reduces per-chunk results in
//! chunk order with the same rule the serial loop uses, so output is
//! identical for any `jobs` value.

use std::ops::Range;

/// Splits `0..n` into at most `jobs` contiguous chunks and runs `work` on
/// each in its own scoped thread; per-chunk results come back in chunk
/// (i.e. index) order. `jobs <= 1` runs inline with no threads.
pub fn map_chunks<T, F>(n: usize, jobs: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let jobs = jobs.clamp(1, n.max(1));
    if jobs == 1 {
        return vec![work(0..n)];
    }
    let per = n.div_ceil(jobs);
    let ranges: Vec<Range<usize>> = (0..jobs)
        .map(|j| (j * per).min(n)..((j + 1) * per).min(n))
        .filter(|r| !r.is_empty())
        .collect();
    let work = &work;
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| scope.spawn(move || work(r)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_index_exactly_once_in_order() {
        for jobs in [1, 2, 3, 7, 100] {
            let chunks = map_chunks(23, jobs, |r| r.collect::<Vec<_>>());
            let flat: Vec<usize> = chunks.concat();
            assert_eq!(flat, (0..23).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn empty_input_runs_once_over_empty_range() {
        let chunks = map_chunks(0, 4, |r| r.len());
        assert_eq!(chunks, vec![0]);
    }

    #[test]
    fn chunk_sums_match_serial_for_integer_values() {
        let data: Vec<u64> = (0..1000).map(|i| i * i).collect();
        let serial: u64 = data.iter().sum();
        for jobs in [2, 5, 16] {
            let total: u64 = map_chunks(data.len(), jobs, |r| data[r].iter().sum::<u64>())
                .into_iter()
                .sum();
            assert_eq!(total, serial);
        }
    }
}
