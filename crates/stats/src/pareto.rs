//! Concentration ("80-20 rule") measures.
//!
//! §6.1 of the paper: the top 20% of Steam users account for 82.4% of total
//! playtime; the top 10% contribute 93.0% of two-week playtime; the top 20%
//! hold 73% of total market value.

/// Fraction of the total mass held by the top `top_fraction` of the sample.
///
/// E.g. `top_share(&playtimes, 0.2)` answers "what share of all playtime do
/// the top 20% of users account for?". Returns `None` for empty input or
/// zero total.
pub fn top_share(data: &[f64], top_fraction: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&top_fraction));
    if data.is_empty() {
        return None;
    }
    let total: f64 = data.iter().sum();
    if total <= 0.0 {
        return None;
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let k = ((data.len() as f64) * top_fraction).round() as usize;
    let k = k.clamp(1, data.len());
    let top: f64 = sorted[..k].iter().sum();
    Some(top / total)
}

/// The full Lorenz curve as `(population fraction, mass fraction)` points,
/// from poorest to richest, at `steps` resolution.
pub fn lorenz_curve(data: &[f64], steps: usize) -> Vec<(f64, f64)> {
    assert!(steps >= 2);
    if data.is_empty() {
        return Vec::new();
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    let total: f64 = sorted.iter().sum();
    if total <= 0.0 {
        return Vec::new();
    }
    let mut cum = Vec::with_capacity(sorted.len() + 1);
    cum.push(0.0);
    let mut acc = 0.0;
    for v in &sorted {
        acc += v;
        cum.push(acc);
    }
    (0..=steps)
        .map(|i| {
            let p = i as f64 / steps as f64;
            // Floor keeps the curve at or below the diagonal for the
            // ascending (poorest-first) ordering.
            let idx = ((sorted.len() as f64) * p).floor() as usize;
            (p, cum[idx.min(sorted.len())] / total)
        })
        .collect()
}

/// Gini coefficient (0 = perfectly equal, →1 = maximally concentrated).
pub fn gini(data: &[f64]) -> Option<f64> {
    if data.is_empty() {
        return None;
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let total: f64 = sorted.iter().sum();
    if total <= 0.0 {
        return None;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, v)| (i as f64 + 1.0) * v)
        .sum();
    Some((2.0 * weighted) / (n * total) - (n + 1.0) / n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_data_has_proportional_shares() {
        let data = vec![1.0; 100];
        let s = top_share(&data, 0.2).unwrap();
        assert!((s - 0.2).abs() < 1e-12);
        assert!(gini(&data).unwrap().abs() < 1e-12);
    }

    #[test]
    fn extreme_concentration() {
        let mut data = vec![0.0; 99];
        data.push(100.0);
        assert_eq!(top_share(&data, 0.01).unwrap(), 1.0);
        assert!(gini(&data).unwrap() > 0.98);
    }

    #[test]
    fn pareto_like_data() {
        // x_i ∝ 1/i^1.2 gives heavy concentration.
        let data: Vec<f64> = (1..=1000).map(|i| (i as f64).powf(-1.2)).collect();
        let s = top_share(&data, 0.2).unwrap();
        assert!(s > 0.7, "top-20% share = {s}");
    }

    #[test]
    fn lorenz_endpoints() {
        let data = vec![1.0, 2.0, 3.0, 4.0];
        let curve = lorenz_curve(&data, 4);
        assert_eq!(curve.first().unwrap().1, 0.0);
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-12);
        // Lorenz curve is convex/monotone.
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(top_share(&[], 0.5).is_none());
        assert!(top_share(&[0.0, 0.0], 0.5).is_none());
        assert!(gini(&[]).is_none());
        assert!(lorenz_curve(&[], 5).is_empty());
    }
}
