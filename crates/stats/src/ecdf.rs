//! Empirical distribution functions and percentiles.
//!
//! Everything the paper plots is either a CCDF on log axes or a percentile
//! table (Table 3). [`Ecdf`] owns a sorted copy of the sample and answers
//! CDF/CCDF/quantile queries in `O(log n)`.

/// An empirical cumulative distribution function over a sample.
#[derive(Clone, Debug)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF; NaNs are rejected.
    pub fn new(mut data: Vec<f64>) -> Self {
        assert!(
            data.iter().all(|x| !x.is_nan()),
            "Ecdf input must not contain NaN"
        );
        data.sort_by(f64::total_cmp);
        Ecdf { sorted: data }
    }

    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted sample.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// P(X ≤ x).
    pub fn cdf(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// P(X > x) — the complementary CDF the paper's figures plot.
    pub fn ccdf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// The q-quantile for q in [0, 1], with linear interpolation between
    /// order statistics (type-7, the numpy/R default).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile q must be in [0,1]");
        let n = self.sorted.len();
        if n == 0 {
            return f64::NAN;
        }
        if n == 1 {
            return self.sorted[0];
        }
        let h = q * (n - 1) as f64;
        let lo = h.floor() as usize;
        let hi = h.ceil() as usize;
        if lo == hi {
            self.sorted[lo]
        } else {
            let frac = h - lo as f64;
            self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
        }
    }

    /// Percentile helper: `percentile(80.0)` = 80th percentile.
    pub fn percentile(&self, p: f64) -> f64 {
        self.quantile(p / 100.0)
    }

    /// Points of the CCDF at each distinct sample value, as `(x, P(X > x))`
    /// pairs — exactly what a log-log CCDF plot consumes.
    pub fn ccdf_points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        let mut out = Vec::new();
        let mut i = 0;
        while i < n {
            let x = self.sorted[i];
            let mut j = i;
            while j < n && self.sorted[j] == x {
                j += 1;
            }
            out.push((x, (n - j) as f64 / n as f64));
            i = j;
        }
        out
    }

    /// Minimum of the sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum of the sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }
}

/// Convenience: compute the standard percentile row the paper's Table 3 uses
/// (50th / 80th / 90th / 95th / 99th).
pub fn table3_percentiles(data: Vec<f64>) -> [f64; 5] {
    let e = Ecdf::new(data);
    [50.0, 80.0, 90.0, 95.0, 99.0].map(|p| e.percentile(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_step_function() {
        let e = Ecdf::new(vec![1.0, 2.0, 2.0, 3.0]);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.0), 0.75);
        assert_eq!(e.cdf(3.0), 1.0);
        assert_eq!(e.cdf(99.0), 1.0);
        assert_eq!(e.ccdf(2.0), 0.25);
    }

    #[test]
    fn quantiles_interpolate() {
        let e = Ecdf::new(vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.quantile(1.0), 50.0);
        assert_eq!(e.quantile(0.5), 30.0);
        assert_eq!(e.quantile(0.25), 20.0);
        assert_eq!(e.percentile(75.0), 40.0);
        // Between order statistics.
        assert!((e.quantile(0.1) - 14.0).abs() < 1e-12);
    }

    #[test]
    fn single_element() {
        let e = Ecdf::new(vec![7.0]);
        assert_eq!(e.quantile(0.0), 7.0);
        assert_eq!(e.quantile(0.73), 7.0);
        assert_eq!(e.quantile(1.0), 7.0);
    }

    #[test]
    fn empty_sample() {
        let e = Ecdf::new(vec![]);
        assert!(e.cdf(1.0).is_nan());
        assert!(e.quantile(0.5).is_nan());
        assert!(e.min().is_none());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Ecdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn ccdf_points_dedupe() {
        let e = Ecdf::new(vec![1.0, 1.0, 2.0, 5.0]);
        let pts = e.ccdf_points();
        assert_eq!(pts, vec![(1.0, 0.5), (2.0, 0.25), (5.0, 0.0)]);
    }

    #[test]
    fn table3_row() {
        let data: Vec<f64> = (1..=100).map(f64::from).collect();
        let row = table3_percentiles(data);
        assert!((row[0] - 50.5).abs() < 1e-9);
        assert!((row[1] - 80.2).abs() < 1e-9);
        assert!((row[4] - 99.01).abs() < 1e-9);
    }

    #[test]
    fn cdf_monotone() {
        let e = Ecdf::new(vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]);
        let mut prev = -1.0;
        for i in 0..100 {
            let x = i as f64 / 10.0;
            let c = e.cdf(x);
            assert!(c >= prev);
            prev = c;
        }
    }
}
