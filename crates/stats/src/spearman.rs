//! Spearman rank correlation (§7 of the paper).
//!
//! Implemented as Pearson correlation of mid-ranks, which handles ties
//! correctly (the paper's data is full of ties: integer friend counts, zero
//! playtimes). The paper interprets |ρ| per Evans' scale: 0–0.19 very weak,
//! 0.20–0.39 weak, 0.40–0.59 moderate, 0.60–0.79 strong, 0.80–1.0 very strong.

/// Qualitative strength labels for |ρ| used throughout the paper.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CorrelationStrength {
    VeryWeak,
    Weak,
    Moderate,
    Strong,
    VeryStrong,
}

impl CorrelationStrength {
    /// Classifies an absolute correlation per the paper's §7 scale.
    pub fn from_rho(rho: f64) -> Self {
        match rho.abs() {
            r if r < 0.20 => CorrelationStrength::VeryWeak,
            r if r < 0.40 => CorrelationStrength::Weak,
            r if r < 0.60 => CorrelationStrength::Moderate,
            r if r < 0.80 => CorrelationStrength::Strong,
            _ => CorrelationStrength::VeryStrong,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            CorrelationStrength::VeryWeak => "very weak",
            CorrelationStrength::Weak => "weak",
            CorrelationStrength::Moderate => "moderate",
            CorrelationStrength::Strong => "strong",
            CorrelationStrength::VeryStrong => "very strong",
        }
    }
}

/// Assigns mid-ranks (average rank over ties), 1-based.
pub fn midranks(data: &[f64]) -> Vec<f64> {
    let n = data.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| data[a].total_cmp(&data[b]));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j < n && data[order[j]] == data[order[i]] {
            j += 1;
        }
        // Positions i..j (0-based) share the average of ranks i+1 ..= j.
        let avg = (i + 1 + j) as f64 / 2.0;
        for &idx in &order[i..j] {
            ranks[idx] = avg;
        }
        i = j;
    }
    ranks
}

/// Pearson product-moment correlation; `None` when undefined (fewer than two
/// points or zero variance on either side).
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "pearson inputs must be parallel");
    let n = x.len();
    if n < 2 {
        return None;
    }
    let mx = x.iter().sum::<f64>() / n as f64;
    let my = y.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Spearman's ρ with tie correction; `None` when undefined.
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "spearman inputs must be parallel");
    let rx = midranks(x);
    let ry = midranks(y);
    pearson(&rx, &ry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_monotone_gives_one() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [10.0, 100.0, 1000.0, 1e4, 1e5]; // nonlinear but monotone
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let rev: Vec<f64> = y.iter().rev().copied().collect();
        assert!((spearman(&x, &rev).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn invariant_under_monotone_transform() {
        let x = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6];
        let y = [2.0, 7.0, 1.0, 8.0, 2.8, 1.8];
        let base = spearman(&x, &y).unwrap();
        let x2: Vec<f64> = x.iter().map(|v| v.exp()).collect();
        let y2: Vec<f64> = y.iter().map(|v| v * 100.0 + 5.0).collect();
        assert!((spearman(&x2, &y2).unwrap() - base).abs() < 1e-12);
    }

    #[test]
    fn midranks_average_ties() {
        let r = midranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
        let r = midranks(&[5.0, 5.0, 5.0]);
        assert_eq!(r, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn constant_input_undefined() {
        assert_eq!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
        assert_eq!(pearson(&[1.0], &[2.0]), None);
    }

    #[test]
    fn known_value_with_ties() {
        // Hand-computed example.
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 3.0, 2.0, 4.0];
        // ranks x: 1, 2.5, 2.5, 4 ; ranks y: 1, 3, 2, 4
        let rho = spearman(&x, &y).unwrap();
        let expect = pearson(&[1.0, 2.5, 2.5, 4.0], &[1.0, 3.0, 2.0, 4.0]).unwrap();
        assert!((rho - expect).abs() < 1e-12);
        assert!(rho > 0.8);
    }

    #[test]
    fn strength_scale_matches_paper() {
        // The paper: 0.34 weak, 0.28 weak, 0.09 very weak, 0.45 moderate,
        // 0.62 strong, 0.77 strong.
        assert_eq!(CorrelationStrength::from_rho(0.34), CorrelationStrength::Weak);
        assert_eq!(CorrelationStrength::from_rho(0.09), CorrelationStrength::VeryWeak);
        assert_eq!(CorrelationStrength::from_rho(0.45), CorrelationStrength::Moderate);
        assert_eq!(CorrelationStrength::from_rho(0.62), CorrelationStrength::Strong);
        assert_eq!(CorrelationStrength::from_rho(-0.77), CorrelationStrength::Strong);
        assert_eq!(CorrelationStrength::from_rho(0.85), CorrelationStrength::VeryStrong);
    }
}
