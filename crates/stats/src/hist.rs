//! Histograms, including the logarithmic binning used to render the paper's
//! long-tail distribution figures (Figures 2, 4, 7, 8).

/// A histogram over fixed-width linear bins.
#[derive(Clone, Debug)]
pub struct LinearHistogram {
    pub lo: f64,
    pub hi: f64,
    pub counts: Vec<u64>,
    /// Samples below `lo` / at-or-above `hi`.
    pub underflow: u64,
    pub overflow: u64,
}

impl LinearHistogram {
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0 && hi > lo, "invalid histogram range");
        LinearHistogram { lo, hi, counts: vec![0; bins], underflow: 0, overflow: 0 }
    }

    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.counts.len();
            let w = (self.hi - self.lo) / n as f64;
            let idx = (((x - self.lo) / w) as usize).min(n - 1);
            self.counts[idx] += 1;
        }
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Bin centers, parallel to `counts`.
    pub fn centers(&self) -> Vec<f64> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (0..self.counts.len())
            .map(|i| self.lo + w * (i as f64 + 0.5))
            .collect()
    }
}

/// A histogram over logarithmically spaced bins (for heavy-tailed data).
///
/// Bin `i` covers `[lo·r^i, lo·r^{i+1})` where `r` is the per-bin growth
/// ratio. Zero and negative samples go to a dedicated `zeros` bucket since
/// they have no logarithm — the paper's playtime distributions are dominated
/// by zeros (Figure 6: over 80% of users had zero two-week playtime).
#[derive(Clone, Debug)]
pub struct LogHistogram {
    pub lo: f64,
    pub ratio: f64,
    pub counts: Vec<u64>,
    pub zeros: u64,
    pub overflow: u64,
}

impl LogHistogram {
    /// `lo` — lower edge of the first bin (must be > 0);
    /// `hi` — upper bound of the last bin;
    /// `bins_per_decade` — resolution (10 gives clean log-log plots).
    pub fn new(lo: f64, hi: f64, bins_per_decade: usize) -> Self {
        assert!(lo > 0.0 && hi > lo && bins_per_decade > 0);
        let decades = (hi / lo).log10();
        let n = (decades * bins_per_decade as f64).ceil().max(1.0) as usize;
        let ratio = 10f64.powf(1.0 / bins_per_decade as f64);
        LogHistogram { lo, ratio, counts: vec![0; n], zeros: 0, overflow: 0 }
    }

    pub fn add(&mut self, x: f64) {
        if x <= 0.0 {
            self.zeros += 1;
            return;
        }
        if x < self.lo {
            // Values below the first edge count into the first bin: the
            // figures always start their axis at the sample minimum.
            self.counts[0] += 1;
            return;
        }
        let idx = ((x / self.lo).ln() / self.ratio.ln()).floor() as usize;
        if idx >= self.counts.len() {
            self.overflow += 1;
        } else {
            self.counts[idx] += 1;
        }
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.zeros + self.overflow
    }

    /// Geometric bin centers, parallel to `counts`.
    pub fn centers(&self) -> Vec<f64> {
        (0..self.counts.len())
            .map(|i| self.lo * self.ratio.powf(i as f64 + 0.5))
            .collect()
    }

    /// Density-normalized heights (count / bin width / total), suitable for
    /// overlaying against fitted PDFs.
    pub fn densities(&self) -> Vec<f64> {
        let total = self.total() as f64;
        (0..self.counts.len())
            .map(|i| {
                let left = self.lo * self.ratio.powf(i as f64);
                let width = left * (self.ratio - 1.0);
                self.counts[i] as f64 / width / total
            })
            .collect()
    }
}

/// Exact integer frequency counts (for discrete plots like Figure 2 and the
/// friend-cap anomaly detection at 250/300).
pub fn frequency_u32(data: &[u32]) -> std::collections::BTreeMap<u32, u64> {
    let mut m = std::collections::BTreeMap::new();
    for &x in data {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_binning() {
        let mut h = LinearHistogram::new(0.0, 10.0, 10);
        for x in [0.0, 0.5, 1.0, 9.99, 10.0, -1.0, 55.0] {
            h.add(x);
        }
        assert_eq!(h.counts[0], 2); // 0.0, 0.5
        assert_eq!(h.counts[1], 1); // 1.0
        assert_eq!(h.counts[9], 1); // 9.99
        assert_eq!(h.overflow, 2); // 10.0, 55.0
        assert_eq!(h.underflow, 1);
        assert_eq!(h.total(), 7);
        assert_eq!(h.centers()[0], 0.5);
    }

    #[test]
    fn log_binning() {
        let mut h = LogHistogram::new(1.0, 1000.0, 1); // 3 decade bins
        assert_eq!(h.counts.len(), 3);
        for x in [0.0, 1.0, 5.0, 10.0, 99.0, 100.0, 999.0, 1e6] {
            h.add(x);
        }
        assert_eq!(h.zeros, 1);
        assert_eq!(h.counts[0], 2); // 1, 5
        assert_eq!(h.counts[1], 2); // 10, 99
        assert_eq!(h.counts[2], 2); // 100, 999
        assert_eq!(h.overflow, 1);
        assert_eq!(h.total(), 8);
    }

    #[test]
    fn log_hist_below_lo_goes_to_first_bin() {
        let mut h = LogHistogram::new(10.0, 1000.0, 2);
        h.add(3.0);
        assert_eq!(h.counts[0], 1);
    }

    #[test]
    fn densities_normalize() {
        let mut h = LogHistogram::new(1.0, 100.0, 5);
        for i in 1..=99 {
            h.add(f64::from(i));
        }
        // Integral of density * width should be ~1 (no zeros/overflow here).
        let total: f64 = h
            .densities()
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let left = h.lo * h.ratio.powf(i as f64);
                d * left * (h.ratio - 1.0)
            })
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "integral = {total}");
    }

    #[test]
    fn frequency_counts() {
        let f = frequency_u32(&[1, 1, 2, 250, 250, 250]);
        assert_eq!(f[&1], 2);
        assert_eq!(f[&2], 1);
        assert_eq!(f[&250], 3);
        assert_eq!(f.len(), 3);
    }
}
