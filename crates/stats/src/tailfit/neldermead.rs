//! A small Nelder–Mead simplex minimizer for the 2-parameter MLE fits
//! (lognormal and truncated power law have no closed-form estimators on a
//! truncated support).

/// Minimizes `f` starting from `x0`, returning `(argmin, min)`.
///
/// Standard Nelder–Mead with reflection/expansion/contraction/shrink
/// (coefficients 1, 2, 0.5, 0.5), simplex initialized by perturbing each
/// coordinate by `step`. Deterministic; converges when the simplex's value
/// spread falls below `tol` or `max_iter` evaluations elapse.
pub fn minimize<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    x0: &[f64],
    step: f64,
    tol: f64,
    max_iter: usize,
) -> (Vec<f64>, f64) {
    let dim = x0.len();
    assert!(dim >= 1, "need at least one parameter");

    // Build initial simplex.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(dim + 1);
    let v0 = f(x0);
    simplex.push((x0.to_vec(), v0));
    for d in 0..dim {
        let mut p = x0.to_vec();
        p[d] += if p[d].abs() > 1e-12 { step * p[d].abs() } else { step };
        let v = f(&p);
        simplex.push((p, v));
    }

    for _ in 0..max_iter {
        simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
        let best = simplex[0].1;
        let worst = simplex[dim].1;
        if (worst - best).abs() < tol * (1.0 + best.abs()) {
            break;
        }

        // Centroid of all but the worst.
        let mut centroid = vec![0.0; dim];
        for (p, _) in &simplex[..dim] {
            for (c, x) in centroid.iter_mut().zip(p) {
                *c += x / dim as f64;
            }
        }

        let worst_point = simplex[dim].0.clone();
        let lerp = |t: f64| -> Vec<f64> {
            centroid
                .iter()
                .zip(&worst_point)
                .map(|(c, w)| c + t * (c - w))
                .collect()
        };

        // Reflection.
        let xr = lerp(1.0);
        let fr = f(&xr);
        if fr < simplex[0].1 {
            // Expansion.
            let xe = lerp(2.0);
            let fe = f(&xe);
            simplex[dim] = if fe < fr { (xe, fe) } else { (xr, fr) };
        } else if fr < simplex[dim - 1].1 {
            simplex[dim] = (xr, fr);
        } else {
            // Contraction (outside if fr better than worst, else inside).
            let (xc, fc) = if fr < simplex[dim].1 {
                let xc = lerp(0.5);
                let fc = f(&xc);
                (xc, fc)
            } else {
                let xc = lerp(-0.5);
                let fc = f(&xc);
                (xc, fc)
            };
            if fc < simplex[dim].1.min(fr) {
                simplex[dim] = (xc, fc);
            } else {
                // Shrink toward the best vertex.
                let best_point = simplex[0].0.clone();
                for entry in simplex.iter_mut().skip(1) {
                    let p: Vec<f64> = entry
                        .0
                        .iter()
                        .zip(&best_point)
                        .map(|(x, b)| b + 0.5 * (x - b))
                        .collect();
                    let v = f(&p);
                    *entry = (p, v);
                }
            }
        }
    }

    simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
    simplex.swap_remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let (x, v) = minimize(|p| (p[0] - 3.0).powi(2) + (p[1] + 1.0).powi(2), &[0.0, 0.0], 0.5, 1e-12, 500);
        assert!((x[0] - 3.0).abs() < 1e-4, "{x:?}");
        assert!((x[1] + 1.0).abs() < 1e-4, "{x:?}");
        assert!(v < 1e-7);
    }

    #[test]
    fn minimizes_rosenbrock() {
        let rosen =
            |p: &[f64]| (1.0 - p[0]).powi(2) + 100.0 * (p[1] - p[0] * p[0]).powi(2);
        let (x, v) = minimize(rosen, &[-1.2, 1.0], 0.1, 1e-14, 5000);
        assert!((x[0] - 1.0).abs() < 1e-3, "{x:?} v={v}");
        assert!((x[1] - 1.0).abs() < 1e-3, "{x:?} v={v}");
    }

    #[test]
    fn one_dimensional() {
        let (x, _) = minimize(|p| (p[0] - 7.0).abs(), &[0.0], 1.0, 1e-10, 500);
        assert!((x[0] - 7.0).abs() < 1e-3);
    }

    #[test]
    fn handles_infinite_regions() {
        // Function infinite for negative inputs — optimizer must stay finite.
        let f = |p: &[f64]| {
            if p[0] <= 0.0 {
                f64::INFINITY
            } else {
                (p[0].ln() - 1.0).powi(2)
            }
        };
        let (x, _) = minimize(f, &[0.5, 0.0], 0.2, 1e-12, 1000);
        assert!((x[0] - std::f64::consts::E).abs() < 1e-2, "{x:?}");
    }
}
