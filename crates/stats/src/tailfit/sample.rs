//! Sampling from the fitted tail models — needed by the parametric
//! bootstrap in [`gof`](super::gof) and handy for building synthetic
//! workloads.

use rand::Rng;

use super::dist::{Exponential, Lognormal, PowerLaw, TruncatedPowerLaw};
use crate::special::std_normal_cdf;

/// A tail model that can draw samples.
pub trait SampleTail {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;
}

impl SampleTail for PowerLaw {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF: x = xmin (1-u)^{-1/(α-1)}.
        self.xmin * (1.0 - rng.gen::<f64>()).powf(-1.0 / (self.alpha - 1.0))
    }
}

impl SampleTail for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.xmin - (1.0 - rng.gen::<f64>()).ln() / self.lambda
    }
}

impl SampleTail for Lognormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Rejection from the untruncated lognormal; efficiency equals the
        // tail mass above xmin, so guard against pathological fits where
        // almost no mass survives.
        let zmin = (self.xmin.ln() - self.mu) / self.sigma;
        let mass = 1.0 - std_normal_cdf(zmin);
        if mass < 1e-4 {
            // Approximately exponential beyond xmin with the lognormal's
            // local hazard; fall back to inverse-hazard sampling.
            let hazard = (zmin / self.sigma / self.xmin).max(1e-12);
            return self.xmin - (1.0 - rng.gen::<f64>()).ln() / hazard;
        }
        loop {
            let u1: f64 = rng.gen::<f64>().max(1e-300);
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let x = (self.mu + self.sigma * z).exp();
            if x >= self.xmin {
                return x;
            }
        }
    }
}

impl SampleTail for TruncatedPowerLaw {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Rejection from the pure power law with acceptance e^{-λ(x-xmin)}.
        // Acceptance is bounded below by the cutoff mass near xmin.
        let envelope = PowerLaw { alpha: self.alpha, xmin: self.xmin };
        loop {
            let x = envelope.sample(rng);
            if rng.gen::<f64>() < (-(x - self.xmin) * self.lambda).exp() {
                return x;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tailfit::dist::TailModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// KS distance between a sampler and its own CDF must be small.
    fn self_consistent<M: SampleTail + TailModel>(m: &M, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs: Vec<f64> = (0..20_000).map(|_| m.sample(&mut rng)).collect();
        xs.sort_by(f64::total_cmp);
        let d = crate::tailfit::fit::ks_distance(&xs, m);
        assert!(d < 0.02, "{}: KS = {d}", m.name());
    }

    #[test]
    fn power_law_sampler_matches_cdf() {
        self_consistent(&PowerLaw { alpha: 2.3, xmin: 2.0 }, 1);
    }

    #[test]
    fn exponential_sampler_matches_cdf() {
        self_consistent(&Exponential { lambda: 0.6, xmin: 3.0 }, 2);
    }

    #[test]
    fn lognormal_sampler_matches_cdf() {
        self_consistent(&Lognormal { mu: 1.0, sigma: 0.8, xmin: 1.5 }, 3);
    }

    #[test]
    fn truncated_power_law_sampler_matches_cdf() {
        self_consistent(&TruncatedPowerLaw { alpha: 1.8, lambda: 0.02, xmin: 1.0 }, 4);
    }

    #[test]
    fn samples_respect_xmin() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = PowerLaw { alpha: 2.0, xmin: 7.0 };
        assert!((0..1000).all(|_| m.sample(&mut rng) >= 7.0));
        let m = Lognormal { mu: 0.0, sigma: 1.0, xmin: 2.0 };
        assert!((0..1000).all(|_| m.sample(&mut rng) >= 2.0));
    }

    #[test]
    fn deep_truncated_lognormal_fallback() {
        // xmin far in the tail: rejection would be hopeless; the hazard
        // fallback must produce finite values ≥ xmin.
        let m = Lognormal { mu: 0.0, sigma: 0.5, xmin: 100.0 };
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let x = m.sample(&mut rng);
            assert!(x >= 100.0 && x.is_finite());
        }
    }
}
