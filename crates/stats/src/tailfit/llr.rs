//! Log-likelihood-ratio tests between candidate tail models.
//!
//! Follows Clauset, Shalizi & Newman (2009) §5 / Vuong (1989), as implemented
//! by the `powerlaw` package the paper used: for non-nested pairs, the
//! normalized ratio `R / (σ√n)` is asymptotically standard normal under the
//! null that both models are equally far from the truth, giving a two-sided
//! p-value. For nested pairs (power law inside truncated power law), `2R` is
//! asymptotically χ²₁.

use super::dist::TailModel;
use crate::special::{erf, two_sided_p};

/// Outcome of one pairwise comparison, as reported in the paper's Table 4.
#[derive(Clone, Copy, Debug)]
pub struct Comparison {
    /// Total log-likelihood ratio Σᵢ (ln p₁(xᵢ) − ln p₂(xᵢ)).
    /// Positive favors the first model.
    pub r: f64,
    /// Two-sided significance of the ratio.
    pub p: f64,
}

impl Comparison {
    /// Whether the test is significant at the paper's 0.05 threshold.
    pub fn significant(&self) -> bool {
        self.p < 0.05
    }

    /// Significant evidence for the first model.
    pub fn favors_first(&self) -> bool {
        self.significant() && self.r > 0.0
    }

    /// Significant evidence for the second model.
    pub fn favors_second(&self) -> bool {
        self.significant() && self.r < 0.0
    }
}

/// Vuong test for non-nested models over the same tail sample.
pub fn compare_non_nested<A: TailModel, B: TailModel>(
    tail: &[f64],
    first: &A,
    second: &B,
) -> Comparison {
    let n = tail.len();
    if n == 0 {
        return Comparison { r: 0.0, p: 1.0 };
    }
    let a = first.ln_pdf_batch(tail);
    let b = second.ln_pdf_batch(tail);
    let diffs: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x - y).collect();
    let r: f64 = diffs.iter().sum();
    let mean = r / n as f64;
    let var = diffs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
    if var <= 0.0 || !r.is_finite() {
        return Comparison { r, p: 1.0 };
    }
    // Normalized statistic R / (σ √n) ~ N(0,1) under the null.
    let z = r / (var.sqrt() * (n as f64).sqrt());
    Comparison { r, p: two_sided_p(z) }
}

/// Likelihood-ratio test for nested models (`first` must nest `second`, e.g.
/// truncated power law vs power law). Under the null that the simpler model
/// suffices, `2R ~ χ²₁`; p = 1 − F_{χ²₁}(2R).
pub fn compare_nested<A: TailModel, B: TailModel>(
    tail: &[f64],
    first: &A,
    second: &B,
) -> Comparison {
    if tail.is_empty() {
        return Comparison { r: 0.0, p: 1.0 };
    }
    let r = first.log_likelihood(tail) - second.log_likelihood(tail);
    if !r.is_finite() {
        return Comparison { r, p: 1.0 };
    }
    // χ²₁ CDF(x) = erf(√(x/2)); with x = 2R, p = 1 − erf(√R).
    let p = if r <= 0.0 { 1.0 } else { 1.0 - erf(r.sqrt()) };
    Comparison { r, p }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tailfit::dist::{Exponential, Lognormal, PowerLaw, TruncatedPowerLaw};
    use crate::tailfit::fit::{
        fit_exponential, fit_lognormal, fit_power_law, fit_truncated_power_law,
    };
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn power_law_sample(rng: &mut StdRng, alpha: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|_| (1.0 - rng.gen::<f64>()).powf(-1.0 / (alpha - 1.0)))
            .collect()
    }

    fn lognormal_sample(rng: &mut StdRng, mu: f64, sigma: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|_| {
                let u1: f64 = rng.gen::<f64>().max(1e-12);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (mu + sigma * z).exp()
            })
            .collect()
    }

    #[test]
    fn power_law_data_beats_exponential() {
        let mut rng = StdRng::seed_from_u64(11);
        let data = power_law_sample(&mut rng, 2.3, 5000);
        let pl = fit_power_law(&data, 1.0);
        let ex = fit_exponential(&data, 1.0);
        let cmp = compare_non_nested(&data, &pl, &ex);
        assert!(cmp.favors_first(), "R={} p={}", cmp.r, cmp.p);
    }

    #[test]
    fn exponential_data_beats_power_law() {
        let mut rng = StdRng::seed_from_u64(12);
        let data: Vec<f64> = (0..5000)
            .map(|_| 1.0 - (1.0 - rng.gen::<f64>()).ln() / 0.5)
            .collect();
        let pl = fit_power_law(&data, 1.0);
        let ex = fit_exponential(&data, 1.0);
        let cmp = compare_non_nested(&data, &pl, &ex);
        assert!(cmp.favors_second(), "R={} p={}", cmp.r, cmp.p);
    }

    #[test]
    fn lognormal_data_beats_power_law() {
        let mut rng = StdRng::seed_from_u64(13);
        let raw = lognormal_sample(&mut rng, 2.0, 0.6, 30_000);
        let xmin = 1.0;
        let mut tail: Vec<f64> = raw.into_iter().filter(|&x| x >= xmin).collect();
        tail.sort_by(f64::total_cmp);
        let pl = fit_power_law(&tail, xmin);
        let ln = fit_lognormal(&tail, xmin);
        let cmp = compare_non_nested(&tail, &pl, &ln);
        assert!(cmp.favors_second(), "R={} p={}", cmp.r, cmp.p);
    }

    #[test]
    fn identical_models_are_indistinguishable() {
        let data = vec![1.0, 2.0, 3.0, 5.0, 8.0];
        let m1 = PowerLaw { alpha: 2.0, xmin: 1.0 };
        let m2 = PowerLaw { alpha: 2.0, xmin: 1.0 };
        let cmp = compare_non_nested(&data, &m1, &m2);
        assert_eq!(cmp.r, 0.0);
        assert_eq!(cmp.p, 1.0);
        assert!(!cmp.significant());
    }

    #[test]
    fn nested_test_prefers_tpl_when_cutoff_is_real() {
        let mut rng = StdRng::seed_from_u64(14);
        // TPL sample via rejection.
        let alpha = 1.6;
        let lambda = 0.05;
        let mut data = Vec::new();
        while data.len() < 8000 {
            let x = (1.0 - rng.gen::<f64>()).powf(-1.0 / (alpha - 1.0));
            if rng.gen::<f64>() < (-lambda * (x - 1.0)).exp() {
                data.push(x);
            }
        }
        let pl = fit_power_law(&data, 1.0);
        let tpl = fit_truncated_power_law(&data, 1.0);
        let cmp = compare_nested(&data, &tpl, &pl);
        assert!(cmp.favors_first(), "R={} p={}", cmp.r, cmp.p);
    }

    #[test]
    fn nested_test_insignificant_on_pure_power_law() {
        let mut rng = StdRng::seed_from_u64(15);
        let data = power_law_sample(&mut rng, 2.5, 4000);
        let pl = fit_power_law(&data, 1.0);
        let tpl = fit_truncated_power_law(&data, 1.0);
        let cmp = compare_nested(&data, &tpl, &pl);
        // TPL can only match or slightly exceed PL likelihood here; the
        // nested test must not call that significant.
        assert!(cmp.r >= -1e-6, "TPL should nest PL, R={}", cmp.r);
        assert!(!cmp.favors_first() || cmp.r < 3.0, "spurious cutoff: R={} p={}", cmp.r, cmp.p);
    }

    #[test]
    fn tpl_vs_lognormal_prefers_truth() {
        let mut rng = StdRng::seed_from_u64(16);
        let raw = lognormal_sample(&mut rng, 2.0, 0.5, 40_000);
        let xmin = 2.0;
        let tail: Vec<f64> = raw.into_iter().filter(|&x| x >= xmin).collect();
        let tpl = fit_truncated_power_law(&tail, xmin);
        let ln = fit_lognormal(&tail, xmin);
        let cmp = compare_non_nested(&tail, &tpl, &ln);
        // Lognormal data: the comparison should not significantly favor TPL.
        assert!(!cmp.favors_first(), "R={} p={}", cmp.r, cmp.p);
    }

    #[test]
    fn empty_tail_is_neutral() {
        let pl = PowerLaw { alpha: 2.0, xmin: 1.0 };
        let ln = Lognormal { mu: 0.0, sigma: 1.0, xmin: 1.0 };
        let tpl = TruncatedPowerLaw { alpha: 2.0, lambda: 0.1, xmin: 1.0 };
        let ex = Exponential { lambda: 1.0, xmin: 1.0 };
        assert_eq!(compare_non_nested(&[], &pl, &ln).p, 1.0);
        assert_eq!(compare_nested(&[], &tpl, &ex).p, 1.0);
    }
}
