//! Discrete power-law fitting.
//!
//! The paper's quantities are integers (friend counts, games, minutes). The
//! `powerlaw` package — and our main pipeline — default to continuous fits,
//! which are accurate for tails starting at moderate `x_min`; this module
//! provides the exact discrete MLE for validation and for tails anchored at
//! small integers, where the continuous approximation biases α upward.
//!
//! The discrete power law on `k ≥ k_min` has pmf `k^{-α} / ζ(α, k_min)`,
//! where `ζ(α, q) = Σ_{n≥0} (n+q)^{-α}` is the Hurwitz zeta function.

use super::dist::TailModel;
use super::neldermead::minimize;

/// Hurwitz zeta ζ(s, q) for s > 1, q > 0, by direct summation plus the
/// Euler–Maclaurin tail correction:
/// Σ_{n≥N} (n+q)^{-s} ≈ (N+q)^{1-s}/(s-1) + (N+q)^{-s}/2 + s(N+q)^{-s-1}/12.
pub fn hurwitz_zeta(s: f64, q: f64) -> f64 {
    assert!(s > 1.0, "hurwitz_zeta requires s > 1 (got {s})");
    assert!(q > 0.0, "hurwitz_zeta requires q > 0 (got {q})");
    const N: usize = 64;
    let mut sum = 0.0;
    for n in 0..N {
        sum += (n as f64 + q).powf(-s);
    }
    let a = N as f64 + q;
    sum + a.powf(1.0 - s) / (s - 1.0) + 0.5 * a.powf(-s) + s * a.powf(-s - 1.0) / 12.0
}

/// A discrete power law `P(K = k) = k^{-α} / ζ(α, k_min)` on integers
/// `k ≥ k_min`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiscretePowerLaw {
    pub alpha: f64,
    pub kmin: u64,
}

impl DiscretePowerLaw {
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if k < self.kmin {
            return f64::NEG_INFINITY;
        }
        -self.alpha * (k as f64).ln() - hurwitz_zeta(self.alpha, self.kmin as f64).ln()
    }

    /// Log-likelihood of an integer sample (all ≥ kmin).
    pub fn log_likelihood(&self, data: &[u64]) -> f64 {
        let n = data.len() as f64;
        let sum_ln: f64 = data.iter().map(|&k| (k as f64).ln()).sum();
        -self.alpha * sum_ln - n * hurwitz_zeta(self.alpha, self.kmin as f64).ln()
    }
}

impl TailModel for DiscretePowerLaw {
    fn name(&self) -> &'static str {
        "discrete power law"
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        self.ln_pmf(x.round() as u64)
    }

    fn cdf(&self, x: f64) -> f64 {
        // P(K ≤ x) = 1 − ζ(α, floor(x)+1) / ζ(α, kmin)
        if x < self.kmin as f64 {
            return 0.0;
        }
        let z_min = hurwitz_zeta(self.alpha, self.kmin as f64);
        let z_tail = hurwitz_zeta(self.alpha, x.floor() + 1.0);
        (1.0 - z_tail / z_min).clamp(0.0, 1.0)
    }
}

/// Exact discrete MLE over the tail `data ≥ kmin` (1-D numeric
/// maximization of the zeta likelihood).
pub fn fit_discrete_power_law(data: &[u64], kmin: u64) -> DiscretePowerLaw {
    debug_assert!(data.iter().all(|&k| k >= kmin));
    let n = data.len() as f64;
    let sum_ln: f64 = data.iter().map(|&k| (k as f64).ln()).sum();
    // Continuous estimate as the seed (with the +0.5 discreteness shift of
    // Clauset et al. eq. 3.7).
    let seed = 1.0
        + n / data
            .iter()
            .map(|&k| (k as f64 / (kmin as f64 - 0.5)).ln())
            .sum::<f64>()
            .max(1e-9);
    let objective = |p: &[f64]| {
        let alpha = 1.0 + p[0].exp();
        if alpha > 30.0 {
            return f64::INFINITY;
        }
        alpha * sum_ln + n * hurwitz_zeta(alpha, kmin as f64).ln()
    };
    let seed_p = (seed - 1.0).clamp(1e-3, 20.0).ln();
    let (best, _) = minimize(objective, &[seed_p], 0.3, 1e-12, 200);
    DiscretePowerLaw { alpha: 1.0 + best[0].exp(), kmin }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol * (1.0 + b.abs()), "{a} vs {b}");
    }

    #[test]
    fn hurwitz_matches_riemann_at_q1() {
        // ζ(2) = π²/6, ζ(3) ≈ 1.2020569, ζ(4) = π⁴/90.
        close(hurwitz_zeta(2.0, 1.0), std::f64::consts::PI.powi(2) / 6.0, 1e-10);
        close(hurwitz_zeta(3.0, 1.0), 1.202_056_903_159_594, 1e-10);
        close(hurwitz_zeta(4.0, 1.0), std::f64::consts::PI.powi(4) / 90.0, 1e-10);
    }

    #[test]
    fn hurwitz_shift_identity() {
        // ζ(s, q) = ζ(s, q+1) + q^{-s}
        for s in [1.5, 2.5, 3.5] {
            for q in [1.0, 2.0, 7.5] {
                close(
                    hurwitz_zeta(s, q),
                    hurwitz_zeta(s, q + 1.0) + q.powf(-s),
                    1e-11,
                );
            }
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let m = DiscretePowerLaw { alpha: 2.3, kmin: 2 };
        let total: f64 = (2u64..200_000).map(|k| m.ln_pmf(k).exp()).sum();
        assert!((total - 1.0).abs() < 1e-3, "sum = {total}");
    }

    #[test]
    fn cdf_is_consistent_with_pmf() {
        let m = DiscretePowerLaw { alpha: 2.0, kmin: 1 };
        let mut acc = 0.0;
        for k in 1u64..50 {
            acc += m.ln_pmf(k).exp();
            close(m.cdf(k as f64), acc, 1e-6);
        }
    }

    fn sample_discrete(rng: &mut StdRng, m: &DiscretePowerLaw, n: usize) -> Vec<u64> {
        // Inverse-CDF on integers via binary search over the CDF.
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen();
                let mut lo = m.kmin;
                let mut hi = m.kmin * 1_000 + 1_000;
                while m.cdf(hi as f64) < u && hi < u64::MAX / 4 {
                    hi *= 4;
                }
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    if m.cdf(mid as f64) < u {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                lo
            })
            .collect()
    }

    #[test]
    fn discrete_mle_recovers_alpha_at_small_kmin() {
        let mut rng = StdRng::seed_from_u64(41);
        for alpha in [1.8f64, 2.5, 3.2] {
            let truth = DiscretePowerLaw { alpha, kmin: 1 };
            let data = sample_discrete(&mut rng, &truth, 20_000);
            let fit = fit_discrete_power_law(&data, 1);
            close(fit.alpha, alpha, 0.03);
        }
    }

    #[test]
    fn continuous_fit_is_biased_at_kmin_one_discrete_is_not() {
        // The motivating case: k_min = 1 integers.
        let mut rng = StdRng::seed_from_u64(43);
        let truth = DiscretePowerLaw { alpha: 2.2, kmin: 1 };
        let data = sample_discrete(&mut rng, &truth, 30_000);
        let as_f64: Vec<f64> = data.iter().map(|&k| k as f64).collect();
        let continuous = super::super::fit::fit_power_law(&as_f64, 1.0);
        let discrete = fit_discrete_power_law(&data, 1);
        let cont_err = (continuous.alpha - 2.2f64).abs();
        let disc_err = (discrete.alpha - 2.2f64).abs();
        assert!(
            disc_err < cont_err,
            "discrete err {disc_err:.3} should beat continuous err {cont_err:.3}"
        );
        assert!(disc_err < 0.05, "{}", discrete.alpha);
    }

    #[test]
    fn log_likelihood_matches_pmf_sum() {
        let m = DiscretePowerLaw { alpha: 2.0, kmin: 2 };
        let data = [2u64, 3, 5, 8];
        let manual: f64 = data.iter().map(|&k| m.ln_pmf(k)).sum();
        close(m.log_likelihood(&data), manual, 1e-12);
    }
}
