//! Maximum-likelihood fitting of the tail models, Kolmogorov–Smirnov
//! distances, and the KS-minimizing `x_min` scan of Clauset et al.

use super::dist::{Exponential, Lognormal, PowerLaw, TailModel, TruncatedPowerLaw};
use super::neldermead::minimize;

/// Fits a power law to tail data (all values ≥ `xmin`) via the closed-form
/// continuous MLE: α = 1 + n / Σ ln(x/x_min).
pub fn fit_power_law(tail: &[f64], xmin: f64) -> PowerLaw {
    debug_assert!(tail.iter().all(|&x| x >= xmin));
    let n = tail.len() as f64;
    let sum_ln: f64 = tail.iter().map(|&x| (x / xmin).ln()).sum();
    // Guard against all-equal tails (sum_ln = 0): return a steep alpha.
    let alpha = if sum_ln > 0.0 { 1.0 + n / sum_ln } else { f64::INFINITY };
    PowerLaw { alpha: alpha.min(50.0), xmin }
}

/// Fits an exponential to tail data via the shifted-exponential MLE:
/// λ = 1 / (mean − x_min).
pub fn fit_exponential(tail: &[f64], xmin: f64) -> Exponential {
    let n = tail.len() as f64;
    let mean: f64 = tail.iter().sum::<f64>() / n;
    let excess = (mean - xmin).max(1e-12);
    Exponential { lambda: 1.0 / excess, xmin }
}

/// Fits a truncated lognormal by numerical MLE (Nelder–Mead over (μ, ln σ)),
/// seeded from the sample moments of ln x.
pub fn fit_lognormal(tail: &[f64], xmin: f64) -> Lognormal {
    let lnx: Vec<f64> = tail.iter().map(|&x| x.max(1e-300).ln()).collect();
    let n = lnx.len() as f64;
    let m = lnx.iter().sum::<f64>() / n;
    let var = lnx.iter().map(|l| (l - m) * (l - m)).sum::<f64>() / n;
    let s0 = var.sqrt().max(1e-3);

    let objective = |p: &[f64]| {
        let model = Lognormal { mu: p[0], sigma: p[1].exp(), xmin };
        let ll = model.log_likelihood(tail);
        if ll.is_finite() {
            -ll
        } else {
            f64::INFINITY
        }
    };
    let (best, _) = minimize(objective, &[m, s0.ln()], 0.25, 1e-10, 400);
    Lognormal { mu: best[0], sigma: best[1].exp(), xmin }
}

/// Fits a truncated power law by numerical MLE over (ln(α−1), ln λ), seeded
/// from the pure power-law α and λ = 1/mean.
pub fn fit_truncated_power_law(tail: &[f64], xmin: f64) -> TruncatedPowerLaw {
    let pl = fit_power_law(tail, xmin);
    let mean: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
    let a0 = (pl.alpha - 1.0).clamp(1e-3, 20.0).ln();
    let l0 = (1.0 / mean).max(1e-12).ln();

    let objective = |p: &[f64]| {
        let alpha = 1.0 + p[0].exp();
        let lambda = p[1].exp();
        if !alpha.is_finite() || !lambda.is_finite() || lambda > 1e6 {
            return f64::INFINITY;
        }
        let model = TruncatedPowerLaw { alpha, lambda, xmin };
        let ll = model.log_likelihood(tail);
        if ll.is_finite() {
            -ll
        } else {
            f64::INFINITY
        }
    };
    let (best, _) = minimize(objective, &[a0, l0], 0.4, 1e-10, 600);
    TruncatedPowerLaw { alpha: 1.0 + best[0].exp(), lambda: best[1].exp(), xmin }
}

/// Kolmogorov–Smirnov distance between the empirical CDF of `tail` (must be
/// sorted ascending) and a model CDF.
pub fn ks_distance<M: TailModel>(sorted_tail: &[f64], model: &M) -> f64 {
    let n = sorted_tail.len();
    if n == 0 {
        return f64::NAN;
    }
    let mut d: f64 = 0.0;
    for (i, &x) in sorted_tail.iter().enumerate() {
        let m = model.cdf(x);
        // Compare against the empirical CDF just below and at the step.
        let lo = i as f64 / n as f64;
        let hi = (i + 1) as f64 / n as f64;
        d = d.max((m - lo).abs()).max((m - hi).abs());
    }
    d
}

/// Result of the `x_min` scan.
#[derive(Clone, Debug)]
pub struct XminScan {
    pub xmin: f64,
    /// Power-law fit at the chosen x_min.
    pub power_law: PowerLaw,
    /// KS distance of that fit.
    pub ks: f64,
    /// Number of tail points at the chosen x_min.
    pub n_tail: usize,
}

/// Distinct candidate cut points, quantile-thinned to `max_candidates` and
/// prefiltered so every candidate keeps at least `min_tail` survivors.
fn xmin_candidates(data: &[f64], min_tail: usize, max_candidates: usize) -> Vec<f64> {
    let mut uniq: Vec<f64> = Vec::new();
    let mut prev = f64::NAN;
    for &x in data {
        if x != prev {
            uniq.push(x);
            prev = x;
        }
    }
    // Never cut so deep that fewer than `min_tail` points survive.
    let last_ok = uniq.partition_point(|&u| {
        let start = data.partition_point(|&x| x < u);
        data.len() - start >= min_tail
    });
    let uniq = &uniq[..last_ok];
    if uniq.len() <= max_candidates {
        return uniq.to_vec();
    }
    let mut candidates = Vec::with_capacity(max_candidates);
    for i in 0..max_candidates {
        let idx = i * (uniq.len() - 1) / (max_candidates - 1);
        if candidates.last() != Some(&uniq[idx]) {
            candidates.push(uniq[idx]);
        }
    }
    candidates
}

/// Fits and scores one candidate cut point; `None` when the tail is too
/// small or the power-law MLE is degenerate.
fn eval_candidate(data: &[f64], xmin: f64, min_tail: usize) -> Option<XminScan> {
    let start = data.partition_point(|&x| x < xmin);
    let tail = &data[start..];
    if tail.len() < min_tail {
        return None;
    }
    let pl = fit_power_law(tail, xmin);
    if !pl.alpha.is_finite() || pl.alpha <= 1.0 {
        return None;
    }
    let ks = ks_distance(tail, &pl);
    Some(XminScan { xmin, power_law: pl, ks, n_tail: tail.len() })
}

/// Selects `x_min` by minimizing the power-law KS distance over candidate
/// cut points (Clauset et al. §3.3), as the `powerlaw` package does.
///
/// `data` must be sorted ascending and strictly positive values are the only
/// candidates. `min_tail` bounds how small the surviving tail may be, and at
/// most `max_candidates` distinct values (quantile-spaced) are tried to keep
/// the scan cheap on multi-million-point samples.
pub fn scan_xmin(sorted_data: &[f64], min_tail: usize, max_candidates: usize) -> Option<XminScan> {
    scan_xmin_jobs(sorted_data, min_tail, max_candidates, 1)
}

/// [`scan_xmin`] with the candidate fits spread over `jobs` scoped threads.
///
/// Each candidate fit is independent, and the chunked results are reduced in
/// candidate order with the serial strictly-better rule (`ks < best.ks`, so
/// the earliest candidate wins ties); the selected cut point is therefore
/// identical for every `jobs` value.
pub fn scan_xmin_jobs(
    sorted_data: &[f64],
    min_tail: usize,
    max_candidates: usize,
    jobs: usize,
) -> Option<XminScan> {
    let positive_start = sorted_data.partition_point(|&x| x <= 0.0);
    let data = &sorted_data[positive_start..];
    if data.len() < min_tail.max(2) {
        return None;
    }
    let candidates = xmin_candidates(data, min_tail, max_candidates);
    if candidates.is_empty() {
        return None;
    }

    let per_chunk = crate::par::map_chunks(candidates.len(), jobs, |range| {
        candidates[range]
            .iter()
            .map(|&xmin| eval_candidate(data, xmin, min_tail))
            .collect::<Vec<_>>()
    });

    let mut best: Option<XminScan> = None;
    for scan in per_chunk.into_iter().flatten().flatten() {
        if best.as_ref().is_none_or(|b| scan.ks < b.ks) {
            best = Some(scan);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn sample_power_law(rng: &mut StdRng, alpha: f64, xmin: f64, n: usize) -> Vec<f64> {
        // Inverse-CDF sampling: x = xmin (1-u)^{-1/(α-1)}
        (0..n)
            .map(|_| xmin * (1.0 - rng.gen::<f64>()).powf(-1.0 / (alpha - 1.0)))
            .collect()
    }

    fn sample_lognormal(rng: &mut StdRng, mu: f64, sigma: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|_| {
                // Box–Muller.
                let u1: f64 = rng.gen::<f64>().max(1e-12);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (mu + sigma * z).exp()
            })
            .collect()
    }

    #[test]
    fn power_law_mle_recovers_alpha() {
        let mut rng = StdRng::seed_from_u64(1);
        for alpha in [1.8, 2.5, 3.2] {
            let data = sample_power_law(&mut rng, alpha, 1.0, 20_000);
            let fit = fit_power_law(&data, 1.0);
            assert!(
                (fit.alpha - alpha).abs() < 0.06,
                "alpha {alpha} fitted as {}",
                fit.alpha
            );
        }
    }

    #[test]
    fn exponential_mle_recovers_lambda() {
        let mut rng = StdRng::seed_from_u64(2);
        let lambda = 0.35;
        let xmin = 2.0;
        let data: Vec<f64> = (0..20_000)
            .map(|_| xmin - (1.0 - rng.gen::<f64>()).ln() / lambda)
            .collect();
        let fit = fit_exponential(&data, xmin);
        assert!((fit.lambda - lambda).abs() < 0.01, "λ = {}", fit.lambda);
    }

    #[test]
    fn lognormal_mle_recovers_parameters() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = sample_lognormal(&mut rng, 1.5, 0.8, 30_000);
        // Untruncated case: xmin below essentially all mass.
        let fit = fit_lognormal(&data, 1e-6);
        assert!((fit.mu - 1.5).abs() < 0.05, "mu = {}", fit.mu);
        assert!((fit.sigma - 0.8).abs() < 0.05, "sigma = {}", fit.sigma);
    }

    #[test]
    fn lognormal_mle_with_truncation() {
        let mut rng = StdRng::seed_from_u64(4);
        let raw = sample_lognormal(&mut rng, 0.0, 1.0, 120_000);
        let xmin = 1.0; // cuts ~half the mass
        let tail: Vec<f64> = raw.into_iter().filter(|&x| x >= xmin).collect();
        let fit = fit_lognormal(&tail, xmin);
        assert!(fit.mu.abs() < 0.12, "mu = {}", fit.mu);
        assert!((fit.sigma - 1.0).abs() < 0.1, "sigma = {}", fit.sigma);
    }

    #[test]
    fn tpl_fit_finds_cutoff() {
        let mut rng = StdRng::seed_from_u64(5);
        // Sample TPL via rejection from a power law envelope.
        let alpha = 1.7;
        let lambda = 0.02;
        let mut data = Vec::with_capacity(20_000);
        while data.len() < 20_000 {
            let x = 1.0 * (1.0 - rng.gen::<f64>()).powf(-1.0 / (alpha - 1.0));
            if rng.gen::<f64>() < (-lambda * (x - 1.0)).exp() {
                data.push(x);
            }
        }
        let fit = fit_truncated_power_law(&data, 1.0);
        assert!((fit.alpha - alpha).abs() < 0.2, "alpha = {}", fit.alpha);
        assert!(
            (fit.lambda / lambda).ln().abs() < 0.8,
            "lambda = {} (want ~{lambda})",
            fit.lambda
        );
    }

    #[test]
    fn ks_distance_small_for_true_model() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut data = sample_power_law(&mut rng, 2.5, 1.0, 10_000);
        data.sort_by(f64::total_cmp);
        let fit = fit_power_law(&data, 1.0);
        let d = ks_distance(&data, &fit);
        assert!(d < 0.02, "KS = {d}");
        // A badly wrong model has a large distance.
        let bad = PowerLaw { alpha: 6.0, xmin: 1.0 };
        assert!(ks_distance(&data, &bad) > 0.2);
    }

    #[test]
    fn xmin_scan_finds_transition() {
        let mut rng = StdRng::seed_from_u64(7);
        // Uniform noise below 5.0, clean power law above.
        let mut data: Vec<f64> = (0..4000).map(|_| rng.gen::<f64>() * 5.0).collect();
        data.extend(sample_power_law(&mut rng, 2.2, 5.0, 8000));
        data.sort_by(f64::total_cmp);
        let scan = scan_xmin(&data, 100, 80).unwrap();
        assert!(
            (3.0..8.0).contains(&scan.xmin),
            "xmin = {} (want ≈5)",
            scan.xmin
        );
        assert!((scan.power_law.alpha - 2.2).abs() < 0.2, "alpha = {}", scan.power_law.alpha);
    }

    #[test]
    fn xmin_scan_is_job_count_invariant() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut data: Vec<f64> = (0..3000).map(|_| rng.gen::<f64>() * 5.0).collect();
        data.extend(sample_power_law(&mut rng, 2.0, 5.0, 6000));
        data.sort_by(f64::total_cmp);
        let serial = scan_xmin(&data, 100, 80).unwrap();
        for jobs in [2, 3, 8, 64] {
            let par = scan_xmin_jobs(&data, 100, 80, jobs).unwrap();
            assert_eq!(par.xmin.to_bits(), serial.xmin.to_bits(), "jobs={jobs}");
            assert_eq!(par.ks.to_bits(), serial.ks.to_bits(), "jobs={jobs}");
            assert_eq!(par.n_tail, serial.n_tail, "jobs={jobs}");
            assert_eq!(
                par.power_law.alpha.to_bits(),
                serial.power_law.alpha.to_bits(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn xmin_scan_ignores_zeros_and_negatives() {
        let mut data = vec![0.0; 500];
        data.extend((1..=1000).map(f64::from));
        data.sort_by(f64::total_cmp);
        let scan = scan_xmin(&data, 50, 40).unwrap();
        assert!(scan.xmin > 0.0);
    }

    #[test]
    fn xmin_scan_rejects_tiny_samples() {
        assert!(scan_xmin(&[1.0, 2.0, 3.0], 50, 40).is_none());
        assert!(scan_xmin(&[], 10, 40).is_none());
    }

    #[test]
    fn all_equal_tail_is_degenerate_not_panicking() {
        let data = vec![5.0; 100];
        let pl = fit_power_law(&data, 5.0);
        assert!(pl.alpha >= 49.0); // capped steep alpha
        let e = fit_exponential(&data, 5.0);
        assert!(e.lambda > 1e6);
    }
}
