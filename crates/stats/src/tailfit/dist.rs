//! The four candidate tail models the paper's appendix compares.
//!
//! All models are *continuous* distributions conditioned on `x ≥ x_min`,
//! exactly as in the `powerlaw` package's default mode. The empirical data is
//! discrete (friend counts, minutes, cents) but the paper's methodology — per
//! Clauset et al. — treats tails continuously; see the crate docs for the
//! discreteness caveat.

use crate::special::{ln_upper_gamma, std_normal_cdf, upper_gamma};

/// A fitted tail model: log-density and CDF on `x ≥ x_min`.
pub trait TailModel {
    /// Human-readable name ("power law", ...).
    fn name(&self) -> &'static str;

    /// Natural log of the density at `x` (conditioned on the tail).
    fn ln_pdf(&self, x: f64) -> f64;

    /// CDF on the tail: P(X ≤ x | X ≥ x_min).
    fn cdf(&self, x: f64) -> f64;

    /// Sum of log-densities over a sample.
    fn log_likelihood(&self, tail: &[f64]) -> f64 {
        tail.iter().map(|&x| self.ln_pdf(x)).sum()
    }

    /// Per-point log-densities (the Vuong test needs the vector, not just
    /// the sum). Implementations with an expensive normalization constant
    /// override this to compute it once.
    fn ln_pdf_batch(&self, tail: &[f64]) -> Vec<f64> {
        tail.iter().map(|&x| self.ln_pdf(x)).collect()
    }
}

/// Pure power law: p(x) ∝ x^{-α}, α > 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerLaw {
    pub alpha: f64,
    pub xmin: f64,
}

impl TailModel for PowerLaw {
    fn name(&self) -> &'static str {
        "power law"
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x < self.xmin {
            return f64::NEG_INFINITY;
        }
        (self.alpha - 1.0).ln() - self.xmin.ln() - self.alpha * (x / self.xmin).ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.xmin {
            return 0.0;
        }
        1.0 - (x / self.xmin).powf(1.0 - self.alpha)
    }
}

/// Exponential: p(x) ∝ e^{-λx}, λ > 0 — the non-heavy-tailed null model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exponential {
    pub lambda: f64,
    pub xmin: f64,
}

impl TailModel for Exponential {
    fn name(&self) -> &'static str {
        "exponential"
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x < self.xmin {
            return f64::NEG_INFINITY;
        }
        self.lambda.ln() - self.lambda * (x - self.xmin)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.xmin {
            return 0.0;
        }
        1.0 - (-self.lambda * (x - self.xmin)).exp()
    }
}

/// Lognormal, truncated at x_min.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Lognormal {
    pub mu: f64,
    pub sigma: f64,
    pub xmin: f64,
}

impl Lognormal {
    /// Survival mass above x_min under the untruncated lognormal.
    fn tail_mass(&self) -> f64 {
        1.0 - std_normal_cdf((self.xmin.ln() - self.mu) / self.sigma)
    }
}

impl Lognormal {
    /// Batch log-likelihood with the truncation mass computed once — the
    /// per-point [`TailModel::ln_pdf`] would re-evaluate the normal CDF for
    /// every sample, which dominates the MLE's inner loop.
    fn log_likelihood_fast(&self, tail: &[f64]) -> f64 {
        if self.sigma <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let mass = self.tail_mass();
        if mass <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let n = tail.len() as f64;
        let constant = self.sigma.ln() + 0.5 * (2.0 * std::f64::consts::PI).ln() + mass.ln();
        let mut sum = 0.0;
        for &x in tail {
            if x < self.xmin {
                return f64::NEG_INFINITY;
            }
            let lx = x.ln();
            let z = (lx - self.mu) / self.sigma;
            sum += -lx - 0.5 * z * z;
        }
        sum - n * constant
    }
}

impl TailModel for Lognormal {
    fn name(&self) -> &'static str {
        "lognormal"
    }

    fn log_likelihood(&self, tail: &[f64]) -> f64 {
        self.log_likelihood_fast(tail)
    }

    fn ln_pdf_batch(&self, tail: &[f64]) -> Vec<f64> {
        let mass = self.tail_mass();
        if self.sigma <= 0.0 || mass <= 0.0 {
            return vec![f64::NEG_INFINITY; tail.len()];
        }
        let constant =
            self.sigma.ln() + 0.5 * (2.0 * std::f64::consts::PI).ln() + mass.ln();
        tail.iter()
            .map(|&x| {
                if x < self.xmin {
                    return f64::NEG_INFINITY;
                }
                let lx = x.ln();
                let z = (lx - self.mu) / self.sigma;
                -lx - 0.5 * z * z - constant
            })
            .collect()
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x < self.xmin || self.sigma <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        let mass = self.tail_mass();
        if mass <= 0.0 {
            return f64::NEG_INFINITY;
        }
        -x.ln()
            - self.sigma.ln()
            - 0.5 * (2.0 * std::f64::consts::PI).ln()
            - 0.5 * z * z
            - mass.ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.xmin {
            return 0.0;
        }
        let mass = self.tail_mass();
        if mass <= 0.0 {
            return 1.0;
        }
        let below_x = std_normal_cdf((x.ln() - self.mu) / self.sigma);
        let below_min = std_normal_cdf((self.xmin.ln() - self.mu) / self.sigma);
        ((below_x - below_min) / mass).clamp(0.0, 1.0)
    }
}

/// Truncated power law: p(x) ∝ x^{-α} e^{-λx} — a power law with an
/// exponential cutoff. Normalization uses Γ(1-α, λ·x_min), which requires the
/// incomplete gamma at negative first arguments.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TruncatedPowerLaw {
    pub alpha: f64,
    pub lambda: f64,
    pub xmin: f64,
}

impl TruncatedPowerLaw {
    /// ln of the normalization constant C where p(x) = C·x^{-α}e^{-λx}.
    fn ln_norm(&self) -> f64 {
        // ∫_{xmin}^∞ x^{-α} e^{-λx} dx = λ^{α-1} Γ(1-α, λ·xmin)
        // C = 1 / that = λ^{1-α} / Γ(1-α, λ·xmin)
        (1.0 - self.alpha) * self.lambda.ln()
            - ln_upper_gamma(1.0 - self.alpha, self.lambda * self.xmin)
    }
}

impl TailModel for TruncatedPowerLaw {
    fn name(&self) -> &'static str {
        "truncated power law"
    }

    /// Batch log-likelihood with the Γ(1−α, λ·x_min) normalization computed
    /// once instead of per point.
    fn log_likelihood(&self, tail: &[f64]) -> f64 {
        if self.lambda <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let ln_norm = self.ln_norm();
        if !ln_norm.is_finite() {
            return f64::NEG_INFINITY;
        }
        let mut sum_ln = 0.0;
        let mut sum_x = 0.0;
        for &x in tail {
            if x < self.xmin {
                return f64::NEG_INFINITY;
            }
            sum_ln += x.ln();
            sum_x += x;
        }
        tail.len() as f64 * ln_norm - self.alpha * sum_ln - self.lambda * sum_x
    }

    fn ln_pdf_batch(&self, tail: &[f64]) -> Vec<f64> {
        if self.lambda <= 0.0 {
            return vec![f64::NEG_INFINITY; tail.len()];
        }
        let ln_norm = self.ln_norm();
        tail.iter()
            .map(|&x| {
                if x < self.xmin {
                    f64::NEG_INFINITY
                } else {
                    ln_norm - self.alpha * x.ln() - self.lambda * x
                }
            })
            .collect()
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x < self.xmin || self.lambda <= 0.0 {
            return f64::NEG_INFINITY;
        }
        self.ln_norm() - self.alpha * x.ln() - self.lambda * x
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.xmin {
            return 0.0;
        }
        let s = 1.0 - self.alpha;
        let denom = upper_gamma(s, self.lambda * self.xmin);
        if !(denom.is_finite() && denom > 0.0) {
            // Underflow regime: fall back to log-space ratio.
            let ln_num = ln_upper_gamma(s, self.lambda * x);
            let ln_den = ln_upper_gamma(s, self.lambda * self.xmin);
            return (1.0 - (ln_num - ln_den).exp()).clamp(0.0, 1.0);
        }
        let num = upper_gamma(s, self.lambda * x);
        (1.0 - num / denom).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerically integrate a model's density over the tail; must be ~1.
    fn integral<M: TailModel>(m: &M, xmin: f64, hi: f64, steps: usize) -> f64 {
        let mut total = 0.0;
        // Log-spaced trapezoid to handle the wide range.
        let ratio = (hi / xmin).powf(1.0 / steps as f64);
        let mut x = xmin;
        for _ in 0..steps {
            let x2 = x * ratio;
            let f1 = m.ln_pdf(x).exp();
            let f2 = m.ln_pdf(x2).exp();
            total += 0.5 * (f1 + f2) * (x2 - x);
            x = x2;
        }
        total
    }

    #[test]
    fn power_law_normalizes() {
        let m = PowerLaw { alpha: 2.5, xmin: 1.0 };
        let i = integral(&m, 1.0, 1e9, 4000);
        assert!((i - 1.0).abs() < 1e-3, "integral = {i}");
    }

    #[test]
    fn power_law_cdf_matches_integral() {
        let m = PowerLaw { alpha: 2.0, xmin: 2.0 };
        assert!((m.cdf(2.0)).abs() < 1e-12);
        assert!((m.cdf(4.0) - 0.5).abs() < 1e-12); // 1 - (4/2)^{-1}
        assert!((m.cdf(f64::INFINITY) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_normalizes() {
        let m = Exponential { lambda: 0.7, xmin: 3.0 };
        let i = integral(&m, 3.0, 200.0, 20_000);
        assert!((i - 1.0).abs() < 1e-3, "integral = {i}");
        assert!((m.cdf(3.0)).abs() < 1e-12);
        assert!((m.cdf(3.0 + 1.0 / 0.7) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn lognormal_normalizes() {
        let m = Lognormal { mu: 1.0, sigma: 1.2, xmin: 0.5 };
        let i = integral(&m, 0.5, 1e6, 20_000);
        assert!((i - 1.0).abs() < 1e-3, "integral = {i}");
    }

    #[test]
    fn lognormal_cdf_endpoints() {
        let m = Lognormal { mu: 0.0, sigma: 1.0, xmin: 1.0 };
        assert_eq!(m.cdf(0.5), 0.0);
        assert!((m.cdf(1.0)).abs() < 1e-12);
        assert!(m.cdf(1e9) > 0.999);
        // Monotone.
        let mut prev = 0.0;
        for i in 1..200 {
            let c = m.cdf(1.0 + i as f64 * 0.5);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn truncated_power_law_normalizes() {
        let m = TruncatedPowerLaw { alpha: 1.8, lambda: 0.01, xmin: 1.0 };
        let i = integral(&m, 1.0, 5000.0, 40_000);
        assert!((i - 1.0).abs() < 2e-3, "integral = {i}");
    }

    #[test]
    fn truncated_power_law_cdf_consistent_with_pdf() {
        let m = TruncatedPowerLaw { alpha: 2.2, lambda: 0.05, xmin: 2.0 };
        // CDF differences ≈ integral of pdf over the interval.
        for (a, b) in [(2.0, 5.0), (5.0, 20.0), (20.0, 100.0)] {
            let cdf_diff = m.cdf(b) - m.cdf(a);
            let approx = integral(&m, a, b, 8000) * 1.0;
            assert!(
                (cdf_diff - approx).abs() < 5e-3,
                "[{a},{b}] cdf {cdf_diff} vs ∫pdf {approx}"
            );
        }
    }

    #[test]
    fn tpl_with_tiny_lambda_approaches_power_law() {
        let pl = PowerLaw { alpha: 2.5, xmin: 1.0 };
        let tpl = TruncatedPowerLaw { alpha: 2.5, lambda: 1e-9, xmin: 1.0 };
        for x in [1.0, 2.0, 10.0, 100.0] {
            assert!(
                (pl.ln_pdf(x) - tpl.ln_pdf(x)).abs() < 1e-3,
                "x={x}: {} vs {}",
                pl.ln_pdf(x),
                tpl.ln_pdf(x)
            );
        }
    }

    #[test]
    fn below_xmin_is_impossible() {
        assert_eq!(PowerLaw { alpha: 2.0, xmin: 5.0 }.ln_pdf(4.9), f64::NEG_INFINITY);
        assert_eq!(Exponential { lambda: 1.0, xmin: 5.0 }.ln_pdf(0.0), f64::NEG_INFINITY);
        assert_eq!(
            Lognormal { mu: 0.0, sigma: 1.0, xmin: 5.0 }.ln_pdf(1.0),
            f64::NEG_INFINITY
        );
        assert_eq!(
            TruncatedPowerLaw { alpha: 2.0, lambda: 0.1, xmin: 5.0 }.ln_pdf(1.0),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn log_likelihood_sums() {
        let m = PowerLaw { alpha: 2.0, xmin: 1.0 };
        let data = [1.0, 2.0, 4.0];
        let ll = m.log_likelihood(&data);
        let manual: f64 = data.iter().map(|&x| m.ln_pdf(x)).sum();
        assert_eq!(ll, manual);
    }
}
