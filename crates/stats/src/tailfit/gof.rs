//! Goodness-of-fit by parametric bootstrap (Clauset, Shalizi & Newman §4).
//!
//! The likelihood-ratio tests in [`llr`](super::llr) only say which of two
//! models fits *better*; this module answers whether the power law is a
//! plausible fit at all: simulate many synthetic datasets from the fitted
//! model, re-fit each, and report the fraction whose KS distance exceeds the
//! empirical one. `p ≥ 0.1` is the conventional "plausible" threshold.

use rand::rngs::StdRng;
use rand::SeedableRng;

use super::dist::PowerLaw;
use super::fit::{fit_power_law, ks_distance};
use super::sample::SampleTail;

/// Result of the bootstrap.
#[derive(Clone, Copy, Debug)]
pub struct GofResult {
    /// Empirical KS distance of the fit.
    pub ks: f64,
    /// Bootstrap p-value: fraction of synthetic datasets fitting worse.
    pub p_value: f64,
    /// Number of bootstrap rounds run.
    pub rounds: usize,
}

impl GofResult {
    /// Clauset et al.'s convention: the hypothesis is plausible at p ≥ 0.1.
    pub fn plausible(&self) -> bool {
        self.p_value >= 0.1
    }
}

/// Bootstraps the power-law fit on a tail sample (all values ≥ `fit.xmin`).
///
/// Deterministic given `seed`. Each round draws `tail.len()` samples from
/// the fitted model, re-fits α by MLE, and records the KS distance; the
/// p-value is the share of rounds at least as distant as the data.
pub fn bootstrap_power_law(tail: &[f64], fit: &PowerLaw, rounds: usize, seed: u64) -> GofResult {
    assert!(rounds > 0, "need at least one bootstrap round");
    let mut sorted = tail.to_vec();
    sorted.sort_by(f64::total_cmp);
    let empirical = ks_distance(&sorted, fit);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut worse = 0usize;
    let mut synth = vec![0.0f64; tail.len()];
    for _ in 0..rounds {
        for x in synth.iter_mut() {
            *x = fit.sample(&mut rng);
        }
        synth.sort_by(f64::total_cmp);
        let refit = fit_power_law(&synth, fit.xmin);
        if ks_distance(&synth, &refit) >= empirical {
            worse += 1;
        }
    }
    GofResult { ks: empirical, p_value: worse as f64 / rounds as f64, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn true_power_law_is_plausible() {
        let mut rng = StdRng::seed_from_u64(31);
        let data: Vec<f64> = (0..3_000)
            .map(|_| (1.0 - rng.gen::<f64>()).powf(-1.0 / 1.5))
            .collect();
        let fit = fit_power_law(&data, 1.0);
        let gof = bootstrap_power_law(&data, &fit, 100, 7);
        assert!(gof.plausible(), "p = {} (ks = {})", gof.p_value, gof.ks);
    }

    #[test]
    fn exponential_data_is_implausible() {
        let mut rng = StdRng::seed_from_u64(32);
        let data: Vec<f64> = (0..3_000)
            .map(|_| 1.0 - (1.0 - rng.gen::<f64>()).ln() / 0.9)
            .collect();
        let fit = fit_power_law(&data, 1.0);
        let gof = bootstrap_power_law(&data, &fit, 100, 7);
        assert!(!gof.plausible(), "p = {} (ks = {})", gof.p_value, gof.ks);
        assert!(gof.p_value < 0.05);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = StdRng::seed_from_u64(33);
        let data: Vec<f64> = (0..500)
            .map(|_| (1.0 - rng.gen::<f64>()).powf(-1.0 / 1.2))
            .collect();
        let fit = fit_power_law(&data, 1.0);
        let a = bootstrap_power_law(&data, &fit, 50, 9);
        let b = bootstrap_power_law(&data, &fit, 50, 9);
        assert_eq!(a.p_value, b.p_value);
        assert_eq!(a.ks, b.ks);
        assert_eq!(a.rounds, 50);
    }
}
