//! Goodness-of-fit by parametric bootstrap (Clauset, Shalizi & Newman §4).
//!
//! The likelihood-ratio tests in [`llr`](super::llr) only say which of two
//! models fits *better*; this module answers whether the power law is a
//! plausible fit at all: simulate many synthetic datasets from the fitted
//! model, re-fit each, and report the fraction whose KS distance exceeds the
//! empirical one. `p ≥ 0.1` is the conventional "plausible" threshold.

use rand::rngs::StdRng;
use rand::SeedableRng;

use super::dist::PowerLaw;
use super::fit::{fit_power_law, ks_distance};
use super::sample::SampleTail;

/// Result of the bootstrap.
#[derive(Clone, Copy, Debug)]
pub struct GofResult {
    /// Empirical KS distance of the fit.
    pub ks: f64,
    /// Bootstrap p-value: fraction of synthetic datasets fitting worse.
    pub p_value: f64,
    /// Number of bootstrap rounds run.
    pub rounds: usize,
}

impl GofResult {
    /// Clauset et al.'s convention: the hypothesis is plausible at p ≥ 0.1.
    pub fn plausible(&self) -> bool {
        self.p_value >= 0.1
    }
}

/// Derives the RNG seed for one bootstrap round from the master seed: a
/// SplitMix64 finalizer over `master + round·φ`. Each round gets its own
/// stream, so rounds are independent of execution order and a parallel run
/// draws exactly the streams the serial run draws.
fn round_seed(master: u64, round: u64) -> u64 {
    let mut z = master.wrapping_add(round.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Bootstraps the power-law fit on a tail sample (all values ≥ `fit.xmin`).
///
/// Deterministic given `seed`. Each round draws `tail.len()` samples from
/// the fitted model (from a per-round RNG stream derived from `seed`),
/// re-fits α by MLE, and records the KS distance; the p-value is the share
/// of rounds at least as distant as the data.
pub fn bootstrap_power_law(tail: &[f64], fit: &PowerLaw, rounds: usize, seed: u64) -> GofResult {
    bootstrap_power_law_jobs(tail, fit, rounds, seed, 1)
}

/// [`bootstrap_power_law`] with the rounds spread over `jobs` scoped
/// threads. The per-round seed streams make the p-value identical for any
/// `jobs` value.
pub fn bootstrap_power_law_jobs(
    tail: &[f64],
    fit: &PowerLaw,
    rounds: usize,
    seed: u64,
    jobs: usize,
) -> GofResult {
    assert!(rounds > 0, "need at least one bootstrap round");
    let mut sorted = tail.to_vec();
    sorted.sort_by(f64::total_cmp);
    let empirical = ks_distance(&sorted, fit);

    let counts = crate::par::map_chunks(rounds, jobs, |range| {
        let mut synth = vec![0.0f64; tail.len()];
        let mut worse = 0usize;
        for round in range {
            let mut rng = StdRng::seed_from_u64(round_seed(seed, round as u64));
            for x in synth.iter_mut() {
                *x = fit.sample(&mut rng);
            }
            synth.sort_by(f64::total_cmp);
            let refit = fit_power_law(&synth, fit.xmin);
            if ks_distance(&synth, &refit) >= empirical {
                worse += 1;
            }
        }
        worse
    });
    let worse: usize = counts.iter().sum();
    GofResult { ks: empirical, p_value: worse as f64 / rounds as f64, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn true_power_law_is_plausible() {
        let mut rng = StdRng::seed_from_u64(31);
        let data: Vec<f64> = (0..3_000)
            .map(|_| (1.0 - rng.gen::<f64>()).powf(-1.0 / 1.5))
            .collect();
        let fit = fit_power_law(&data, 1.0);
        let gof = bootstrap_power_law(&data, &fit, 100, 7);
        assert!(gof.plausible(), "p = {} (ks = {})", gof.p_value, gof.ks);
    }

    #[test]
    fn exponential_data_is_implausible() {
        let mut rng = StdRng::seed_from_u64(32);
        let data: Vec<f64> = (0..3_000)
            .map(|_| 1.0 - (1.0 - rng.gen::<f64>()).ln() / 0.9)
            .collect();
        let fit = fit_power_law(&data, 1.0);
        let gof = bootstrap_power_law(&data, &fit, 100, 7);
        assert!(!gof.plausible(), "p = {} (ks = {})", gof.p_value, gof.ks);
        assert!(gof.p_value < 0.05);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = StdRng::seed_from_u64(33);
        let data: Vec<f64> = (0..500)
            .map(|_| (1.0 - rng.gen::<f64>()).powf(-1.0 / 1.2))
            .collect();
        let fit = fit_power_law(&data, 1.0);
        let a = bootstrap_power_law(&data, &fit, 50, 9);
        let b = bootstrap_power_law(&data, &fit, 50, 9);
        assert_eq!(a.p_value, b.p_value);
        assert_eq!(a.ks, b.ks);
        assert_eq!(a.rounds, 50);
    }

    #[test]
    fn job_count_invariant() {
        let mut rng = StdRng::seed_from_u64(34);
        let data: Vec<f64> = (0..800)
            .map(|_| (1.0 - rng.gen::<f64>()).powf(-1.0 / 1.4))
            .collect();
        let fit = fit_power_law(&data, 1.0);
        let serial = bootstrap_power_law(&data, &fit, 60, 11);
        for jobs in [2, 4, 60] {
            let par = bootstrap_power_law_jobs(&data, &fit, 60, 11, jobs);
            assert_eq!(par.p_value, serial.p_value, "jobs={jobs}");
            assert_eq!(par.ks, serial.ks, "jobs={jobs}");
        }
    }
}
