//! The paper's distribution-classification procedure (§3.3 + Appendix).
//!
//! Four pairwise tests are run at the power-law-fitted `x_min`:
//!
//! 1. power law vs exponential — the heavy-tail gate;
//! 2. power law vs lognormal;
//! 3. truncated power law vs power law (nested);
//! 4. truncated power law vs lognormal — the final discriminator.
//!
//! Labels follow the paper exactly:
//! * **Heavy-tailed** — passes the gate but nothing further can be said;
//! * **Long-tailed** — narrowed to {lognormal, truncated power law} but test
//!   4 cannot separate them;
//! * **Lognormal** / **Truncated power law** — test 4 is decisive;
//! * **Power law** — a true power law (the paper observed none);
//! * **Not heavy-tailed** — fails the gate.

use super::dist::{Exponential, Lognormal, PowerLaw, TruncatedPowerLaw};
use super::fit::{
    fit_exponential, fit_lognormal, fit_power_law, fit_truncated_power_law, scan_xmin_jobs,
};
use super::llr::{compare_nested, compare_non_nested, Comparison};

/// Final classification labels, matching Table 4's vocabulary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TailClass {
    NotHeavyTailed,
    HeavyTailed,
    LongTailed,
    Lognormal,
    TruncatedPowerLaw,
    PowerLaw,
}

impl TailClass {
    pub fn as_str(self) -> &'static str {
        match self {
            TailClass::NotHeavyTailed => "Not heavy-tailed",
            TailClass::HeavyTailed => "Heavy-tailed",
            TailClass::LongTailed => "Long-tailed",
            TailClass::Lognormal => "Lognormal",
            TailClass::TruncatedPowerLaw => "Truncated power law",
            TailClass::PowerLaw => "Power law",
        }
    }

    /// Whether the label implies a heavy tail at all.
    pub fn is_heavy(self) -> bool {
        self != TailClass::NotHeavyTailed
    }
}

/// Everything Table 4 reports for one distribution, plus the fitted models.
#[derive(Clone, Debug)]
pub struct TailReport {
    pub xmin: f64,
    pub n_tail: usize,
    pub power_law: PowerLaw,
    pub exponential: Exponential,
    pub lognormal: Lognormal,
    pub truncated_power_law: TruncatedPowerLaw,
    /// Power-law KS distance at the chosen x_min.
    pub ks: f64,
    pub pl_vs_exp: Comparison,
    pub pl_vs_ln: Comparison,
    pub tpl_vs_pl: Comparison,
    pub tpl_vs_ln: Comparison,
    pub class: TailClass,
}

/// Options controlling the fit.
#[derive(Clone, Copy, Debug)]
pub struct ClassifyOptions {
    /// Minimum surviving tail size during the x_min scan.
    pub min_tail: usize,
    /// Cap on distinct x_min candidates (quantile-thinned above this).
    pub max_xmin_candidates: usize,
    /// Cap on tail points used for likelihood evaluation; larger tails are
    /// deterministically decimated. Statistical power is ample at 200k.
    pub max_tail_points: usize,
}

impl Default for ClassifyOptions {
    fn default() -> Self {
        ClassifyOptions { min_tail: 50, max_xmin_candidates: 60, max_tail_points: 200_000 }
    }
}

/// Applies the paper's decision rules to the four comparisons.
pub fn decide(
    pl_vs_exp: &Comparison,
    pl_vs_ln: &Comparison,
    tpl_vs_pl: &Comparison,
    tpl_vs_ln: &Comparison,
) -> TailClass {
    // Gate: the tail must decisively beat the exponential null.
    if !pl_vs_exp.favors_first() {
        return TailClass::NotHeavyTailed;
    }
    // Decisive final test.
    if tpl_vs_ln.significant() {
        return if tpl_vs_ln.r > 0.0 {
            TailClass::TruncatedPowerLaw
        } else {
            TailClass::Lognormal
        };
    }
    // Narrowed to {lognormal, truncated power law}: both alternatives beat
    // the pure power law, but the final test cannot separate them.
    if pl_vs_ln.favors_second() && tpl_vs_pl.favors_first() {
        return TailClass::LongTailed;
    }
    // A true power law: significantly better than lognormal and no
    // significant cutoff.
    if pl_vs_ln.favors_first() && !tpl_vs_pl.favors_first() {
        return TailClass::PowerLaw;
    }
    TailClass::HeavyTailed
}

/// Runs the complete pipeline on raw (unsorted, possibly zero-laden) data.
///
/// Returns `None` when there is not enough positive data to fit a tail.
pub fn classify_tail(data: &[f64], opts: &ClassifyOptions) -> Option<TailReport> {
    classify_tail_jobs(data, opts, 1)
}

/// [`classify_tail`] with the x_min scan and the two numerical MLE fits
/// spread over `jobs` scoped threads. Every fit is independent and the scan
/// reduces in candidate order, so the report is identical for any `jobs`.
pub fn classify_tail_jobs(data: &[f64], opts: &ClassifyOptions, jobs: usize) -> Option<TailReport> {
    let mut sorted: Vec<f64> = data.iter().copied().filter(|x| !x.is_nan()).collect();
    sorted.sort_by(f64::total_cmp);

    let scan = scan_xmin_jobs(&sorted, opts.min_tail, opts.max_xmin_candidates, jobs)?;
    let start = sorted.partition_point(|&x| x < scan.xmin);
    let full_tail = &sorted[start..];

    // Deterministic decimation for very large tails.
    let owned_tail: Vec<f64>;
    let tail: &[f64] = if full_tail.len() > opts.max_tail_points {
        let stride = full_tail.len() / opts.max_tail_points;
        owned_tail = full_tail.iter().step_by(stride.max(1)).copied().collect();
        &owned_tail
    } else {
        full_tail
    };

    let pl = fit_power_law(tail, scan.xmin);
    let ex = fit_exponential(tail, scan.xmin);
    // The two Nelder–Mead MLEs dominate the fit cost and are independent;
    // run them side by side when parallelism is available.
    let (ln, tpl) = if jobs > 1 {
        std::thread::scope(|scope| {
            let ln = scope.spawn(|| fit_lognormal(tail, scan.xmin));
            let tpl = fit_truncated_power_law(tail, scan.xmin);
            (ln.join().expect("lognormal fit panicked"), tpl)
        })
    } else {
        (fit_lognormal(tail, scan.xmin), fit_truncated_power_law(tail, scan.xmin))
    };

    let pl_vs_exp = compare_non_nested(tail, &pl, &ex);
    let pl_vs_ln = compare_non_nested(tail, &pl, &ln);
    let tpl_vs_pl = compare_nested(tail, &tpl, &pl);
    let tpl_vs_ln = compare_non_nested(tail, &tpl, &ln);

    let class = decide(&pl_vs_exp, &pl_vs_ln, &tpl_vs_pl, &tpl_vs_ln);

    Some(TailReport {
        xmin: scan.xmin,
        n_tail: full_tail.len(),
        power_law: pl,
        exponential: ex,
        lognormal: ln,
        truncated_power_law: tpl,
        ks: scan.ks,
        pl_vs_exp,
        pl_vs_ln,
        tpl_vs_pl,
        tpl_vs_ln,
        class,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn cmp(r: f64, p: f64) -> Comparison {
        Comparison { r, p }
    }

    #[test]
    fn decision_table_matches_paper_rows() {
        // Account market values row of Table 4:
        // PLvExp (7423, ~0), PLvLN (-49.6, sig), TPLvPL (50.5, 0), TPLvLN (0.9, 0.861)
        let c = decide(&cmp(7423.0, 0.0), &cmp(-49.6, 1e-12), &cmp(50.5, 0.0), &cmp(0.9, 0.861));
        assert_eq!(c, TailClass::LongTailed);

        // Total playtime row: TPLvLN (-4559, ~0) → Lognormal.
        let c = decide(&cmp(455_501.0, 0.0), &cmp(-22_961.0, 0.0), &cmp(18_402.0, 0.0), &cmp(-4559.0, 1e-68));
        assert_eq!(c, TailClass::Lognormal);

        // Two-week playtime row: TPLvLN (493.8, ~0) → Truncated power law.
        let c = decide(&cmp(28_049.0, 0.0), &cmp(-1678.0, 0.0), &cmp(2172.0, 0.0), &cmp(493.8, 1e-68));
        assert_eq!(c, TailClass::TruncatedPowerLaw);

        // Group size row: PLvLN (-0.97, 0.604) insignificant, TPLvPL (2.1,
        // 0.041) significant, TPLvLN (1.13, 0.541) insignificant → Heavy-tailed.
        let c = decide(&cmp(3381.0, 1e-28), &cmp(-0.967, 0.604), &cmp(2.097, 0.041), &cmp(1.129, 0.541));
        assert_eq!(c, TailClass::HeavyTailed);

        // Group membership row: PLvLN (-13, sig), TPLvPL (12.4, sig),
        // TPLvLN (-0.63, 0.808) → Long-tailed.
        let c = decide(&cmp(4812.0, 1e-37), &cmp(-13.0, 2e-5), &cmp(12.37, 6e-7), &cmp(-0.632, 0.808));
        assert_eq!(c, TailClass::LongTailed);
    }

    #[test]
    fn exponential_gate_rejects() {
        let c = decide(&cmp(-5.0, 0.001), &cmp(0.0, 1.0), &cmp(0.0, 1.0), &cmp(0.0, 1.0));
        assert_eq!(c, TailClass::NotHeavyTailed);
        let c = decide(&cmp(5.0, 0.5), &cmp(0.0, 1.0), &cmp(0.0, 1.0), &cmp(0.0, 1.0));
        assert_eq!(c, TailClass::NotHeavyTailed);
        assert!(!c.is_heavy());
    }

    #[test]
    fn pure_power_law_label() {
        let c = decide(&cmp(100.0, 1e-9), &cmp(30.0, 1e-4), &cmp(0.2, 0.6), &cmp(5.0, 0.3));
        assert_eq!(c, TailClass::PowerLaw);
    }

    #[test]
    fn end_to_end_lognormal_data() {
        let mut rng = StdRng::seed_from_u64(21);
        // Test power for the pairwise separations grows with tail size; at
        // 250k samples the KS-optimal x_min retains a ~4k tail which is
        // enough to narrow the label to {lognormal, truncated power law}.
        let data: Vec<f64> = (0..250_000)
            .map(|_| {
                let u1: f64 = rng.gen::<f64>().max(1e-12);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (2.0 + 1.4 * z).exp()
            })
            .collect();
        let report = classify_tail(&data, &ClassifyOptions::default()).unwrap();
        assert!(
            matches!(report.class, TailClass::Lognormal | TailClass::LongTailed),
            "classified as {:?}",
            report.class
        );
    }

    #[test]
    fn end_to_end_exponential_data_not_heavy() {
        let mut rng = StdRng::seed_from_u64(22);
        let data: Vec<f64> = (0..30_000)
            .map(|_| 1.0 - (1.0 - rng.gen::<f64>()).ln() / 0.8)
            .collect();
        let report = classify_tail(&data, &ClassifyOptions::default()).unwrap();
        assert_eq!(report.class, TailClass::NotHeavyTailed, "{report:?}");
    }

    #[test]
    fn end_to_end_truncated_power_law_data() {
        let mut rng = StdRng::seed_from_u64(23);
        let alpha = 1.8;
        let lambda = 0.004;
        let mut data = Vec::new();
        while data.len() < 40_000 {
            let x = (1.0 - rng.gen::<f64>()).powf(-1.0 / (alpha - 1.0));
            if rng.gen::<f64>() < (-lambda * (x - 1.0)).exp() {
                data.push(x);
            }
        }
        let report = classify_tail(&data, &ClassifyOptions::default()).unwrap();
        assert!(
            matches!(report.class, TailClass::TruncatedPowerLaw | TailClass::LongTailed),
            "classified as {:?} (tpl_vs_ln R={} p={})",
            report.class,
            report.tpl_vs_ln.r,
            report.tpl_vs_ln.p
        );
    }

    #[test]
    fn classify_is_job_count_invariant() {
        let mut rng = StdRng::seed_from_u64(26);
        let data: Vec<f64> = (0..25_000)
            .map(|_| (1.0 - rng.gen::<f64>()).powf(-1.0 / 1.5))
            .collect();
        let serial = classify_tail(&data, &ClassifyOptions::default()).unwrap();
        for jobs in [2, 8] {
            let par = classify_tail_jobs(&data, &ClassifyOptions::default(), jobs).unwrap();
            assert_eq!(par.xmin.to_bits(), serial.xmin.to_bits(), "jobs={jobs}");
            assert_eq!(par.n_tail, serial.n_tail, "jobs={jobs}");
            assert_eq!(par.class, serial.class, "jobs={jobs}");
            assert_eq!(
                par.lognormal.mu.to_bits(),
                serial.lognormal.mu.to_bits(),
                "jobs={jobs}"
            );
            assert_eq!(
                par.truncated_power_law.lambda.to_bits(),
                serial.truncated_power_law.lambda.to_bits(),
                "jobs={jobs}"
            );
            assert_eq!(par.tpl_vs_ln.r.to_bits(), serial.tpl_vs_ln.r.to_bits(), "jobs={jobs}");
        }
    }

    #[test]
    fn classify_handles_insufficient_data() {
        assert!(classify_tail(&[1.0, 2.0], &ClassifyOptions::default()).is_none());
        assert!(classify_tail(&[], &ClassifyOptions::default()).is_none());
        assert!(classify_tail(&[0.0; 100], &ClassifyOptions::default()).is_none());
    }

    #[test]
    fn classify_tolerates_zeros_and_nans() {
        let mut rng = StdRng::seed_from_u64(24);
        let mut data: Vec<f64> = (0..20_000)
            .map(|_| (1.0 - rng.gen::<f64>()).powf(-1.0 / 1.5))
            .collect();
        data.extend(vec![0.0; 5000]);
        data.push(f64::NAN);
        let report = classify_tail(&data, &ClassifyOptions::default()).unwrap();
        assert!(report.class.is_heavy(), "{:?}", report.class);
    }

    #[test]
    fn decimation_keeps_classification_stable() {
        let mut rng = StdRng::seed_from_u64(25);
        let data: Vec<f64> = (0..300_000)
            .map(|_| (1.0 - rng.gen::<f64>()).powf(-1.0 / 1.4))
            .collect();
        let small = ClassifyOptions { max_tail_points: 20_000, ..Default::default() };
        let r1 = classify_tail(&data, &small).unwrap();
        assert!(r1.class.is_heavy());
        assert!(r1.n_tail > 100_000); // reported tail size is pre-decimation
    }
}
