//! Heavy-tail analysis: a from-scratch Rust reimplementation of the parts of
//! the Python `powerlaw 1.3` package (Alstott, Bullmore & Plenz 2014) the
//! paper relies on.
//!
//! The pipeline is the methodology of Clauset, Shalizi & Newman (2009):
//!
//! 1. choose `x_min` by minimizing the power-law KS distance over candidate
//!    cut points ([`fit::scan_xmin`]);
//! 2. fit power law, exponential, lognormal and truncated power law to the
//!    surviving tail by maximum likelihood ([`fit`]);
//! 3. compare model pairs by (Vuong-normalized) log-likelihood-ratio tests
//!    ([`llr`]);
//! 4. map the test outcomes onto the paper's taxonomy — heavy-tailed,
//!    long-tailed, lognormal, truncated power law ([`classify`]).
//!
//! **Discreteness caveat.** The empirical quantities are integers (friend
//! counts, minutes, cents). Like the paper (and the `powerlaw` package's
//! default), we fit continuous densities; for tails with `x_min` of a few
//! units or more the continuous MLE's bias is negligible relative to the
//! distinctions the classification draws.

pub mod classify;
pub mod discrete;
pub mod dist;
pub mod fit;
pub mod gof;
pub mod llr;
mod neldermead;
pub mod sample;

pub use classify::{
    classify_tail, classify_tail_jobs, decide, ClassifyOptions, TailClass, TailReport,
};
pub use dist::{Exponential, Lognormal, PowerLaw, TailModel, TruncatedPowerLaw};
pub use fit::{
    fit_exponential, fit_lognormal, fit_power_law, fit_truncated_power_law, ks_distance,
    scan_xmin, scan_xmin_jobs, XminScan,
};
pub use discrete::{fit_discrete_power_law, hurwitz_zeta, DiscretePowerLaw};
pub use gof::{bootstrap_power_law, bootstrap_power_law_jobs, GofResult};
pub use llr::{compare_nested, compare_non_nested, Comparison};
pub use sample::SampleTail;
