//! Property-based tests for the statistics substrate.

use proptest::collection::vec;
use proptest::prelude::*;

use steam_stats::ecdf::Ecdf;
use steam_stats::pareto::{gini, lorenz_curve, top_share};
use steam_stats::spearman::{midranks, pearson, spearman};
use steam_stats::tailfit::dist::{Lognormal, PowerLaw, TailModel, TruncatedPowerLaw};
use steam_stats::tailfit::fit::{fit_power_law, ks_distance};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ecdf_cdf_is_monotone_and_bounded(data in vec(-1e6f64..1e6, 1..200), probe in vec(-1e6f64..1e6, 2..20)) {
        let e = Ecdf::new(data);
        let mut probes = probe;
        probes.sort_by(f64::total_cmp);
        let mut prev = 0.0;
        for x in probes {
            let c = e.cdf(x);
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert!(c >= prev - 1e-15);
            prev = c;
        }
    }

    #[test]
    fn ecdf_quantile_within_range(data in vec(-1e3f64..1e3, 1..100), q in 0.0f64..=1.0) {
        let e = Ecdf::new(data);
        let v = e.quantile(q);
        prop_assert!(v >= e.min().unwrap() - 1e-12);
        prop_assert!(v <= e.max().unwrap() + 1e-12);
    }

    #[test]
    fn quantile_monotone_in_q(data in vec(0.0f64..1e4, 2..100), q1 in 0.0f64..=1.0, q2 in 0.0f64..=1.0) {
        let e = Ecdf::new(data);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(e.quantile(lo) <= e.quantile(hi) + 1e-12);
    }

    #[test]
    fn midranks_sum_is_invariant(data in vec(-1e3f64..1e3, 1..100)) {
        // Ranks always sum to n(n+1)/2 regardless of ties.
        let r = midranks(&data);
        let n = data.len() as f64;
        let sum: f64 = r.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn spearman_bounded_and_symmetric(
        pairs in vec((-1e3f64..1e3, -1e3f64..1e3), 3..80)
    ) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(rho) = spearman(&x, &y) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&rho));
            let rev = spearman(&y, &x).unwrap();
            prop_assert!((rho - rev).abs() < 1e-12);
        }
    }

    #[test]
    fn spearman_negates_under_reflection(
        pairs in vec((-1e3f64..1e3, -1e3f64..1e3), 3..60)
    ) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let neg_y: Vec<f64> = y.iter().map(|v| -v).collect();
        if let (Some(a), Some(b)) = (spearman(&x, &y), spearman(&x, &neg_y)) {
            prop_assert!((a + b).abs() < 1e-9);
        }
    }

    #[test]
    fn pearson_self_correlation_is_one(data in vec(-1e3f64..1e3, 3..60)) {
        // Guard against constant vectors.
        let distinct = data.iter().any(|&v| v != data[0]);
        if distinct {
            let r = pearson(&data, &data).unwrap();
            prop_assert!((r - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn top_share_bounds(data in vec(0.0f64..1e4, 1..200), frac in 0.01f64..=1.0) {
        if let Some(s) = top_share(&data, frac) {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
            // Top share is at least proportional for nonnegative data.
            prop_assert!(s >= frac - 0.5 / data.len() as f64 - 1e-9);
        }
    }

    #[test]
    fn gini_bounds(data in vec(0.0f64..1e4, 2..200)) {
        if let Some(g) = gini(&data) {
            prop_assert!((-1e-9..=1.0).contains(&g), "gini = {g}");
        }
    }

    #[test]
    fn lorenz_is_monotone_and_below_diagonal(data in vec(0.0f64..1e4, 2..100)) {
        let curve = lorenz_curve(&data, 20);
        for w in curve.windows(2) {
            prop_assert!(w[1].1 >= w[0].1 - 1e-12);
        }
        for (p, m) in &curve {
            prop_assert!(*m <= *p + 1e-9, "Lorenz above diagonal: {p} {m}");
        }
    }

    #[test]
    fn power_law_mle_alpha_recovered(alpha in 1.3f64..4.0, seed in any::<u64>()) {
        use rand::prelude::*;
        use rand::rngs::StdRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..5000)
            .map(|_| (1.0 - rng.gen::<f64>()).powf(-1.0 / (alpha - 1.0)))
            .collect();
        let fit = fit_power_law(&data, 1.0);
        prop_assert!((fit.alpha - alpha).abs() < 0.25, "true {alpha} fit {}", fit.alpha);
    }

    #[test]
    fn model_cdfs_monotone(alpha in 1.2f64..4.0, lambda in 1e-4f64..0.5, sigma in 0.2f64..2.5) {
        let models: Vec<Box<dyn TailModel>> = vec![
            Box::new(PowerLaw { alpha, xmin: 1.0 }),
            Box::new(Lognormal { mu: 0.5, sigma, xmin: 1.0 }),
            Box::new(TruncatedPowerLaw { alpha, lambda, xmin: 1.0 }),
        ];
        for m in &models {
            let mut prev = -1e-12;
            for i in 0..60 {
                let x = 1.0 * 1.3f64.powi(i);
                let c = m.cdf(x);
                prop_assert!((0.0..=1.0).contains(&c), "{} cdf({x}) = {c}", m.name());
                prop_assert!(c >= prev - 1e-9, "{} not monotone at {x}", m.name());
                prev = c;
            }
        }
    }

    #[test]
    fn ks_distance_bounded(data in vec(1.0f64..1e4, 10..200), alpha in 1.2f64..4.0) {
        let mut sorted = data;
        sorted.sort_by(f64::total_cmp);
        let m = PowerLaw { alpha, xmin: 1.0 };
        let d = ks_distance(&sorted, &m);
        prop_assert!((0.0..=1.0).contains(&d));
    }
}
