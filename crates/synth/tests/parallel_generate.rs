//! Jobs-invariance matrix: world synthesis must produce byte-identical
//! output for any worker count. Each module in `steam-synth` carries its own
//! stage-level invariance test; this is the end-to-end guarantee across the
//! whole pipeline — snapshot, second snapshot, and week panel — encoded to
//! actual wire bytes so even a field the unit tests forget to compare would
//! show up here.

use steam_model::codec::{encode_panel, encode_snapshot_jobs};
use steam_synth::{Generator, SynthConfig};

fn tiny_config(seed: u64) -> SynthConfig {
    let mut cfg = SynthConfig::small(seed);
    cfg.n_users = 400;
    cfg.n_groups = 16;
    cfg.validate().expect("config");
    cfg
}

#[test]
fn jobs_matrix_is_byte_identical_across_seeds() {
    for seed in [2016u64, 7, 404] {
        let baseline = Generator::new(tiny_config(seed)).generate_world_jobs(1);
        let base_snap = encode_snapshot_jobs(&baseline.snapshot, 1);
        let base_second = encode_snapshot_jobs(&baseline.second_snapshot, 1);
        let base_panel = encode_panel(&baseline.panel);
        for jobs in [2usize, 8] {
            let world = Generator::new(tiny_config(seed)).generate_world_jobs(jobs);
            assert_eq!(
                base_snap,
                encode_snapshot_jobs(&world.snapshot, 1),
                "snapshot diverged at seed {seed}, jobs {jobs}"
            );
            assert_eq!(
                base_second,
                encode_snapshot_jobs(&world.second_snapshot, 1),
                "second snapshot diverged at seed {seed}, jobs {jobs}"
            );
            assert_eq!(
                base_panel,
                encode_panel(&world.panel),
                "panel diverged at seed {seed}, jobs {jobs}"
            );
        }
    }
}

#[test]
fn parallel_section_encoding_matches_serial_bytes() {
    // The codec side of the same guarantee: the sectioned container must
    // not let the encoding job count leak into the bytes.
    let world = Generator::new(tiny_config(2016)).generate_world_jobs(4);
    let serial = encode_snapshot_jobs(&world.snapshot, 1);
    for jobs in [2usize, 3, 8] {
        assert_eq!(
            serial,
            encode_snapshot_jobs(&world.snapshot, jobs),
            "v2 encoding diverged at jobs {jobs}"
        );
    }
}
