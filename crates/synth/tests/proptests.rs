//! Property tests: the generator keeps every structural invariant under
//! randomized configurations, and its calibrated shape properties are
//! seed-robust.

use proptest::prelude::*;

use steam_synth::{Generator, SynthConfig};

/// A small randomized configuration that should always generate cleanly.
fn arb_config() -> impl Strategy<Value = SynthConfig> {
    (
        any::<u64>(),
        500usize..2_000,
        50usize..300,
        5usize..40,
        0.2f64..0.8,   // owner_rate
        0.2f64..0.6,   // social_rate
        0.05f64..0.35, // active_two_week_rate
        0.3f64..0.9,   // same_country_bias
    )
        .prop_map(|(seed, users, products, groups, owner, social, active, country)| {
            let mut cfg = SynthConfig::base(seed);
            cfg.n_users = users;
            cfg.n_products = products;
            cfg.n_groups = groups;
            cfg.owner_rate = owner;
            cfg.social_rate = social;
            cfg.active_two_week_rate = active;
            cfg.same_country_bias = country;
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generated_snapshots_always_validate(cfg in arb_config()) {
        let world = Generator::new(cfg).generate_world();
        world.snapshot.validate().unwrap();
        world.second_snapshot.validate().unwrap();
        prop_assert_eq!(world.snapshot.n_users(), world.config.n_users);
        // Panel users reference the population.
        for &u in &world.panel.users {
            prop_assert!((u as usize) < world.snapshot.n_users());
        }
    }

    #[test]
    fn degrees_respect_caps_any_config(cfg in arb_config()) {
        let snapshot = Generator::new(cfg).generate();
        let degrees = snapshot.degrees();
        for (d, a) in degrees.iter().zip(&snapshot.accounts) {
            prop_assert!(*d <= a.friend_cap());
        }
    }

    #[test]
    fn two_week_never_exceeds_lifetime(cfg in arb_config()) {
        let snapshot = Generator::new(cfg).generate();
        for lib in &snapshot.ownerships {
            for o in lib {
                prop_assert!(o.playtime_2weeks_min <= o.playtime_forever_min);
                prop_assert!(o.playtime_2weeks_min <= steam_model::MAX_TWO_WEEK_MINUTES);
            }
        }
    }

    #[test]
    fn seed_determinism_any_config(cfg in arb_config()) {
        let a = Generator::new(cfg.clone()).generate();
        let b = Generator::new(cfg).generate();
        prop_assert_eq!(a.friendships, b.friendships);
        prop_assert_eq!(a.ownerships, b.ownerships);
        prop_assert_eq!(a.memberships, b.memberships);
    }

    #[test]
    fn libraries_only_grow_across_snapshots(cfg in arb_config()) {
        let world = Generator::new(cfg).generate_world();
        for (l1, l2) in world.snapshot.ownerships.iter().zip(&world.second_snapshot.ownerships) {
            prop_assert!(l2.len() >= l1.len());
            // Every first-snapshot game survives into the second.
            let ids2: std::collections::HashSet<_> =
                l2.iter().map(|o| o.app_id).collect();
            for o in l1 {
                prop_assert!(ids2.contains(&o.app_id));
            }
        }
    }
}
