//! Friendship-graph growth: heavy-tailed target degrees, engagement
//! homophily, country/city locality, Steam's friend caps, and creation
//! timestamps.
//!
//! Calibration targets:
//! * mean degree ≈ 3.6 over all users, long-tailed per-user distribution
//!   (Table 3: 4 / 15 / 29 / 50 / 122 at the 50/80/90/95/99th percentiles
//!   among users with friends);
//! * a visible pile-up just below the 250 and 300 caps (§4.1);
//! * strong degree homophily (§7: ρ = 0.62 between a user's degree and the
//!   mean degree of their friends);
//! * ≈ 30% of friendships international among country-reporting pairs,
//!   ≈ 80% inter-city among city-reporting pairs (§4.1);
//! * friendships forming faster than users join (Figure 1).
//!
//! Parallel structure: target degrees and per-node stub emission fan out
//! over fixed user chunks (streams `friends.targets` / `friends.stubs`);
//! the sort+pairing passes are RNG-free and stay sequential; timestamps fan
//! out over fixed edge chunks of the sorted pair list (`friends.times`).

use std::collections::HashSet;

use rand::Rng;
use steam_model::{Friendship, SimTime};

use crate::accounts::Population;
use crate::config::SynthConfig;
use crate::par::{run_chunks, EDGES_CHUNK, USERS_CHUNK};
use crate::samplers::{chance, pareto};
use crate::seed::stage_rng;

#[derive(Clone, Copy)]
struct Stub {
    noisy_key: f64,
    user: u32,
}

/// One chunk's stub emissions, split by locality layer. Merged in chunk
/// order, which (chunks being contiguous user ranges) equals user order.
struct StubChunk {
    global: Vec<Stub>,
    by_country: Vec<(u32, Stub)>,
    by_city: Vec<((u32, u16), Stub)>,
}

/// Generates the undirected friendship edge list (canonical `a < b`, deduped).
pub fn generate_friendships(
    cfg: &SynthConfig,
    pop: &Population,
    jobs: usize,
) -> Vec<Friendship> {
    let n = pop.accounts.len();
    let lat = &pop.latents;

    // --- Target degrees -----------------------------------------------------
    let caps: Vec<u32> = pop.accounts.iter().map(|a| a.friend_cap()).collect();
    // Having friends at all correlates with engagement (like owning games);
    // this keeps homophily visible through the zero-inflated attributes.
    let social_bias = (cfg.social_rate / (1.0 - cfg.social_rate)).ln();
    let target_chunks = run_chunks(jobs, n, USERS_CHUNK, |c, range| {
        let mut rng = stage_rng(cfg.seed, "friends.targets", c as u64);
        let mut out = Vec::with_capacity(range.len());
        for u in range {
            // Gate on the degree latent itself (see the ownership gate note).
            let deg_latent =
                1.0 * lat.engagement[u].ln() + cfg.degree_sigma * lat.z_degree[u];
            let p_social = crate::samplers::sigmoid(social_bias + 0.9 * deg_latent);
            if !chance(&mut rng, p_social) {
                out.push(0u32);
                continue;
            }
            let coupling = 1.0 * lat.engagement[u].ln();
            let mut t = if chance(&mut rng, cfg.degree_tail_rate) {
                pareto(&mut rng, cfg.degree_tail_xmin, cfg.degree_tail_alpha)
            } else {
                // Uses the stored degree propensity so the matching key below
                // can see it.
                (cfg.degree_mu + coupling + cfg.degree_sigma * lat.z_degree[u]).exp()
            };
            if t < 1.0 {
                t = 1.0;
            }
            // The cap produces the cliff at 250/300 the paper observes.
            out.push((t.round() as u32).min(caps[u]));
        }
        out
    });
    let mut target = Vec::with_capacity(n);
    for mut c in target_chunks {
        target.append(&mut c);
    }

    // --- Homophily by noisy stub matching ------------------------------------
    // Each social user emits `target` stubs carrying their composite
    // behavioral key plus per-stub noise; stubs sorted by noisy key are
    // paired with near neighbors. Pairing adjacency in key space makes
    // friends similar along every behavioral dimension at once (the §7
    // homophily ladder, including the *positive* degree assortativity that
    // initiator/acceptor schemes invert), and realized degrees track targets
    // so the cap cliffs at 250/300 survive.
    if target.iter().filter(|&&t| t > 0).count() < 2 {
        return Vec::new();
    }
    let keys: Vec<f64> = composite_keys(cfg, pop);

    // Locality is layered over the key matching: a stub is city-local,
    // country-local, or global; each layer is matched separately so a
    // country-local stub can only pair within its country.
    //
    // Stub noise: how tightly pairs match in key space. Smaller = stronger
    // homophily.
    let tau = cfg.matching_noise;
    let stub_chunks = run_chunks(jobs, n, USERS_CHUNK, |c, range| {
        let mut rng = stage_rng(cfg.seed, "friends.stubs", c as u64);
        let mut out = StubChunk {
            global: Vec::new(),
            by_country: Vec::new(),
            by_city: Vec::new(),
        };
        for u in range {
            let t = target[u];
            if t == 0 {
                continue;
            }
            for _ in 0..t {
                let stub = Stub {
                    noisy_key: keys[u] + tau * crate::samplers::normal(&mut rng),
                    user: u as u32,
                };
                if chance(&mut rng, cfg.same_country_bias) {
                    let c = lat.true_country[u].dense_index() as u32;
                    if chance(&mut rng, cfg.same_city_bias) {
                        out.by_city.push(((c, lat.true_city[u]), stub));
                    } else {
                        out.by_country.push((c, stub));
                    }
                } else {
                    out.global.push(stub);
                }
            }
        }
        out
    });

    let n_countries = steam_model::CountryCode::universe_size();
    let mut global: Vec<Stub> = Vec::new();
    let mut by_country: Vec<Vec<Stub>> = vec![Vec::new(); n_countries];
    let mut by_city: std::collections::HashMap<(u32, u16), Vec<Stub>> =
        std::collections::HashMap::new();
    for mut chunk in stub_chunks {
        global.append(&mut chunk.global);
        for (c, stub) in chunk.by_country {
            by_country[c as usize].push(stub);
        }
        for (key, stub) in chunk.by_city {
            by_city.entry(key).or_default().push(stub);
        }
    }

    let mut deg = vec![0u32; n];
    let mut edges: HashSet<(u32, u32)> = HashSet::with_capacity(global.len());

    let match_layer = |stubs: &mut Vec<Stub>,
                           edges: &mut HashSet<(u32, u32)>,
                           deg: &mut Vec<u32>| {
        stubs.sort_by(|a, b| {
            a.noisy_key
                .total_cmp(&b.noisy_key)
                .then(a.user.cmp(&b.user))
        });
        let m = stubs.len();
        let mut used = vec![false; m];
        for i in 0..m {
            if used[i] {
                continue;
            }
            let a = stubs[i];
            if deg[a.user as usize] >= caps[a.user as usize] {
                used[i] = true;
                continue;
            }
            // Pair with the nearest unused stub ahead from a different user
            // that doesn't duplicate an edge or bust a cap.
            for j in (i + 1)..m.min(i + 24) {
                if used[j] {
                    continue;
                }
                let b = stubs[j];
                if b.user == a.user || deg[b.user as usize] >= caps[b.user as usize] {
                    continue;
                }
                let key = (a.user.min(b.user), a.user.max(b.user));
                if edges.contains(&key) {
                    continue;
                }
                edges.insert(key);
                deg[a.user as usize] += 1;
                deg[b.user as usize] += 1;
                used[i] = true;
                used[j] = true;
                break;
            }
        }
    };

    match_layer(&mut global, &mut edges, &mut deg);
    for list in &mut by_country {
        if list.len() >= 2 {
            match_layer(list, &mut edges, &mut deg);
        }
    }
    // Deterministic order over city layers.
    let mut city_keys: Vec<(u32, u16)> = by_city.keys().copied().collect();
    city_keys.sort_unstable();
    for ck in city_keys {
        let list = by_city.get_mut(&ck).unwrap();
        if list.len() >= 2 {
            match_layer(list, &mut edges, &mut deg);
        }
    }

    // --- Timestamps -----------------------------------------------------------
    // An edge forms some time after both accounts exist; waiting times are
    // exponential with a ~14-month mean, truncated at the crawl date. Since
    // the user base grows exponentially, edges concentrate in later years
    // and the friendship curve rises faster than the user curve (Figure 1).
    let snapshot = SimTime::from_ymd(2013, 3, 18);
    // HashSet iteration order is seeded per-process; sort the pairs before
    // drawing timestamps so the whole generator stays deterministic. The
    // sorted pair list is also the fixed frame the timestamp chunks index.
    let mut pairs: Vec<(u32, u32)> = edges.into_iter().collect();
    pairs.sort_unstable();
    let time_chunks = run_chunks(jobs, pairs.len(), EDGES_CHUNK, |c, range| {
        let mut rng = stage_rng(cfg.seed, "friends.times", c as u64);
        let mut out: Vec<Friendship> = Vec::with_capacity(range.len());
        for &(a, b) in &pairs[range] {
            let born = pop.accounts[a as usize]
                .created_at
                .max(pop.accounts[b as usize].created_at);
            let wait_days = -(rng.gen::<f64>().max(1e-12)).ln() * 300.0;
            let mut at = born.unix() + (wait_days * 86_400.0) as i64;
            if at > snapshot.unix() {
                // Would have formed after the crawl: it must instead have
                // formed somewhere in the observable window (uniformly), not
                // pile up on the crawl date.
                let span = (snapshot.unix() - born.unix()).max(1);
                at = born.unix() + (rng.gen::<f64>() * span as f64) as i64;
            }
            out.push(Friendship::new(a, b, SimTime::from_unix(at)));
        }
        out
    });
    let mut out = Vec::with_capacity(pairs.len());
    for mut c in time_chunks {
        out.append(&mut c);
    }
    out
}

/// Standardized composite of the three behavioral propensities.
fn composite_keys(cfg: &SynthConfig, pop: &Population) -> Vec<f64> {
    let n = pop.accounts.len();
    let lat = &pop.latents;
    let ln_e: Vec<f64> = lat.engagement.iter().map(|e| e.ln()).collect();
    let raw = |i: usize| -> [f64; 3] {
        [
            cfg.degree_mu + 1.0 * ln_e[i] + cfg.degree_sigma * lat.z_degree[i],
            cfg.library_mu
                + cfg.library_engagement_coupling * ln_e[i]
                + cfg.library_sigma * lat.z_library[i],
            cfg.playtime_engagement_coupling * ln_e[i] + 1.0 * lat.z_playtime[i],
        ]
    };
    // Standardize each dimension over the population.
    let mut mean = [0.0f64; 3];
    let mut var = [0.0f64; 3];
    for i in 0..n {
        let v = raw(i);
        for d in 0..3 {
            mean[d] += v[d];
        }
    }
    for m in &mut mean {
        *m /= n as f64;
    }
    for i in 0..n {
        let v = raw(i);
        for d in 0..3 {
            var[d] += (v[d] - mean[d]) * (v[d] - mean[d]);
        }
    }
    let sd: Vec<f64> = var.iter().map(|v| (v / n as f64).sqrt().max(1e-9)).collect();
    (0..n)
        .map(|i| {
            let v = raw(i);
            (0..3).map(|d| (v[d] - mean[d]) / sd[d]).sum::<f64>() / 3.0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accounts::generate_population;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build() -> (Population, Vec<Friendship>, SynthConfig) {
        let cfg = SynthConfig::small(11);
        let pop = generate_population(&cfg, 1);
        let edges = generate_friendships(&cfg, &pop, 1);
        (pop, edges, cfg)
    }

    fn degrees(n: usize, edges: &[Friendship]) -> Vec<u32> {
        let mut deg = vec![0u32; n];
        for e in edges {
            deg[e.a as usize] += 1;
            deg[e.b as usize] += 1;
        }
        deg
    }

    #[test]
    fn edges_canonical_and_unique() {
        let (pop, edges, _) = build();
        let mut seen = HashSet::new();
        for e in &edges {
            assert!(e.a < e.b);
            assert!((e.b as usize) < pop.accounts.len());
            assert!(seen.insert((e.a, e.b)), "duplicate edge");
        }
    }

    #[test]
    fn mean_degree_near_paper() {
        let (pop, edges, _) = build();
        let mean = 2.0 * edges.len() as f64 / pop.accounts.len() as f64;
        // Paper: 196.37M edges / 108.7M users → mean ≈ 3.6.
        assert!((2.2..5.2).contains(&mean), "mean degree = {mean}");
    }

    #[test]
    fn degrees_respect_caps() {
        let (pop, edges, _) = build();
        let deg = degrees(pop.accounts.len(), &edges);
        for (d, a) in deg.iter().zip(&pop.accounts) {
            assert!(*d <= a.friend_cap(), "degree {d} over cap {}", a.friend_cap());
        }
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let (pop, edges, _) = build();
        let mut deg: Vec<u32> = degrees(pop.accounts.len(), &edges)
            .into_iter()
            .filter(|&d| d > 0)
            .collect();
        deg.sort_unstable();
        let p = |q: f64| deg[((deg.len() - 1) as f64 * q) as usize];
        let median = p(0.50);
        let p99 = p(0.99);
        assert!((2..=7).contains(&median), "median = {median}");
        assert!(p99 >= 40, "p99 = {p99} (want heavy tail)");
        assert!(p99 < 500, "p99 = {p99}");
    }

    #[test]
    fn timestamps_after_both_accounts() {
        let (pop, edges, _) = build();
        for e in edges.iter().take(5000) {
            let born = pop.accounts[e.a as usize]
                .created_at
                .max(pop.accounts[e.b as usize].created_at);
            assert!(e.created_at >= born);
            assert!(e.created_at <= SimTime::from_ymd(2013, 3, 18));
        }
    }

    #[test]
    fn friendships_grow_faster_than_users() {
        let (pop, edges, _) = build();
        let users_by = |y: i32| {
            pop.accounts.iter().filter(|a| a.created_at.year() <= y).count() as f64
        };
        let edges_by = |y: i32| {
            edges.iter().filter(|e| e.created_at.year() <= y).count() as f64
        };
        // Between 2010 and 2013 the edge curve must outgrow the user curve.
        let user_growth = users_by(2013) / users_by(2010).max(1.0);
        let edge_growth = edges_by(2013) / edges_by(2010).max(1.0);
        assert!(
            edge_growth > user_growth,
            "edges ×{edge_growth:.2} vs users ×{user_growth:.2}"
        );
    }

    #[test]
    fn homophily_in_engagement() {
        let (pop, edges, _) = build();
        // Mean |ln-engagement gap| across edges must be far below the gap of
        // random pairs.
        let mut rng = StdRng::seed_from_u64(5);
        let n = pop.accounts.len();
        let eng = &pop.latents.engagement;
        let edge_gap: f64 = edges
            .iter()
            .map(|e| (eng[e.a as usize].ln() - eng[e.b as usize].ln()).abs())
            .sum::<f64>()
            / edges.len() as f64;
        let rand_gap: f64 = (0..edges.len())
            .map(|_| {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                (eng[a].ln() - eng[b].ln()).abs()
            })
            .sum::<f64>()
            / edges.len() as f64;
        assert!(
            edge_gap < rand_gap * 0.6,
            "edge gap {edge_gap:.3} vs random {rand_gap:.3}"
        );
    }

    #[test]
    fn country_locality_near_target() {
        let (pop, edges, _) = build();
        let same = edges
            .iter()
            .filter(|e| {
                pop.latents.true_country[e.a as usize]
                    == pop.latents.true_country[e.b as usize]
            })
            .count() as f64;
        let frac = same / edges.len() as f64;
        // §4.1: 30.34% international → ≈ 70% same-country.
        assert!((0.55..0.85).contains(&frac), "same-country = {frac}");
    }

    #[test]
    fn deterministic() {
        let cfg = SynthConfig::small(13);
        let run = || {
            let pop = generate_population(&cfg, 1);
            generate_friendships(&cfg, &pop, 1)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn jobs_invariant() {
        let cfg = SynthConfig::small(13);
        let pop = generate_population(&cfg, 1);
        let serial = generate_friendships(&cfg, &pop, 1);
        let parallel = generate_friendships(&cfg, &pop, 4);
        assert_eq!(serial, parallel);
    }
}
