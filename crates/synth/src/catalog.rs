//! Catalog generation: products, genres, prices, multiplayer flags,
//! achievements, and the popularity weights that drive ownership/playtime.
//!
//! Calibration targets from the paper:
//! * 6,156 products, of which a minority are games proper (the top collector
//!   owned 2,148 games = "90.3% of the games currently available");
//! * Action ≈ 38.1% of the catalog, 48.7% of games multiplayer;
//! * achievements per game: mode 12, median 24, mean 33.1, max 1,629, with
//!   a moderate coupling to playtime on the 1–90 band (§9, R = 0.53);
//! * Adventure games complete ≈ 19% of achievements on average, Strategy 11%.

use rand::rngs::StdRng;
use rand::Rng;
use steam_model::{Achievement, AppId, AppType, Game, Genre, GenreSet, SimTime};

use crate::config::SynthConfig;
use crate::par::{run_chunks, GAMES_CHUNK, PRODUCTS_CHUNK};
use crate::samplers::{chance, lognormal, normal, pareto};
use crate::seed::stage_rng;

/// Catalog plus the latent per-game state the rest of the generator uses.
#[derive(Clone, Debug)]
pub struct CatalogModel {
    /// All products, sorted by app id. Non-game products exist only to make
    /// the catalog realistic; ownership draws exclusively from games.
    pub products: Vec<Game>,
    /// Indices into `products` that are games.
    pub game_indices: Vec<u32>,
    /// Popularity weight per game (parallel to `game_indices`).
    pub popularity: Vec<f64>,
}

/// Primary-genre weights, tuned so Action lands near 38% of games after
/// secondary labels are added.
const GENRE_WEIGHTS: [(Genre, f64); 12] = [
    // With up to two secondary draws at 35% each (≈1.7 labels/game), a
    // primary weight of 0.245 puts Action on ≈38% of games, matching §5.
    (Genre::Action, 0.245),
    (Genre::Indie, 0.175),
    (Genre::Strategy, 0.135),
    (Genre::Adventure, 0.100),
    (Genre::Rpg, 0.085),
    (Genre::Casual, 0.085),
    (Genre::Simulation, 0.070),
    (Genre::Sports, 0.035),
    (Genre::Racing, 0.032),
    (Genre::FreeToPlay, 0.020),
    (Genre::MassivelyMultiplayer, 0.013),
    (Genre::EarlyAccess, 0.005),
];

/// Storefront price points in cents with choice weights (non-free games).
const PRICE_POINTS: [(u32, f64); 12] = [
    (199, 0.06),
    (299, 0.07),
    (499, 0.15),
    (699, 0.10),
    (999, 0.22),
    (1499, 0.13),
    (1999, 0.12),
    (2499, 0.05),
    (2999, 0.05),
    (3999, 0.02),
    (4999, 0.02),
    (5999, 0.01),
];

/// Mean achievement completion percentage by genre (§9).
fn genre_completion_base(genres: GenreSet) -> f64 {
    if genres.contains(Genre::Adventure) {
        19.0
    } else if genres.contains(Genre::Strategy) {
        11.0
    } else {
        14.5
    }
}

fn pick_genres(rng: &mut StdRng) -> GenreSet {
    let mut set = GenreSet::new();
    // Primary label.
    let x: f64 = rng.gen();
    let mut acc = 0.0;
    let mut primary = Genre::Action;
    for (g, w) in GENRE_WEIGHTS {
        acc += w;
        if x < acc {
            primary = g;
            break;
        }
    }
    set.insert(primary);
    // Up to two secondary labels.
    for _ in 0..2 {
        if chance(rng, 0.35) {
            let y: f64 = rng.gen();
            let mut acc = 0.0;
            for (g, w) in GENRE_WEIGHTS {
                acc += w;
                if y < acc {
                    set.insert(g);
                    break;
                }
            }
        }
    }
    set
}

fn pick_price(rng: &mut StdRng, genres: GenreSet) -> u32 {
    if genres.contains(Genre::FreeToPlay) {
        return 0;
    }
    let x: f64 = rng.gen();
    let mut acc = 0.0;
    for (cents, w) in PRICE_POINTS {
        acc += w;
        if x < acc {
            return cents;
        }
    }
    PRICE_POINTS.last().unwrap().0
}

/// Achievement count for one game, coupled to its popularity percentile
/// (`0.0` = least popular game, `1.0` = most popular).
///
/// §9 found cumulative playtime and achievement count correlate at R ≈ 0.53
/// on the 1–90 band and not at all beyond: popular games invest in
/// achievements, while the >90 monsters are idiosyncratic. The coupling
/// strength is `cfg.achievement_popularity_coupling`.
fn achievement_count(rng: &mut StdRng, cfg: &SynthConfig, popularity_pct: f64) -> usize {
    if chance(rng, cfg.no_achievements_rate) {
        return 0;
    }
    if chance(rng, 0.012) {
        // Rare completionist monsters (the paper's max is 1,629),
        // independent of popularity.
        return (pareto(rng, 90.0, 1.2) as usize).min(1_650);
    }
    // Lognormal with median rising from ~13 (obscure) to ~48 (top) —
    // overall median ≈ 24, mode ≈ 12, mean ≈ 33 as in §9.
    let mu = 12f64.ln() + cfg.achievement_popularity_coupling * popularity_pct;
    (lognormal(rng, mu, 0.55).round() as usize).clamp(1, 1_650)
}

fn achievements_for(rng: &mut StdRng, genres: GenreSet, count: usize) -> Vec<Achievement> {
    if count == 0 {
        return Vec::new();
    }
    let base = genre_completion_base(genres);
    // Per-game difficulty multiplier: lognormal so the distribution of mean
    // completion is right-skewed (mode ≈ 5%, mean ≈ 14-15%).
    let difficulty = lognormal(rng, 0.0, 0.75);
    let game_base = (base * difficulty * 0.6).clamp(0.5, 80.0);
    (0..count)
        .map(|i| {
            // Earlier achievements are easier; completion decays with rank.
            let rank_factor = 1.0 / (1.0 + 0.06 * i as f64);
            let noise = (0.3 * normal(rng)).exp();
            let pct = (game_base * rank_factor * noise * 2.0).clamp(0.1, 98.0);
            Achievement { name: format!("ach_{i:04}"), global_completion_pct: pct as f32 }
        })
        .collect()
}

fn release_date(rng: &mut StdRng) -> SimTime {
    // Catalog skews recent: quadratic bias toward 2013.
    let u: f64 = rng.gen::<f64>().sqrt();
    let year = 2003 + (u * 10.0) as i32;
    let month = rng.gen_range(1..=12);
    let day = rng.gen_range(1..=28);
    SimTime::from_ymd(year.min(2013), month, day)
}

/// Generates the product catalog. Product attributes fan out over
/// `PRODUCTS_CHUNK`-sized chunks of the `catalog.products` stream; the
/// popularity permutation is one short sequential pass on its own stream;
/// achievements fan out over `GAMES_CHUNK` chunks of `catalog.achievements`.
pub fn generate_catalog(cfg: &SynthConfig, jobs: usize) -> CatalogModel {
    // --- products -------------------------------------------------------------
    let chunks = run_chunks(jobs, cfg.n_products, PRODUCTS_CHUNK, |c, range| {
        let mut rng = stage_rng(cfg.seed, "catalog.products", c as u64);
        let mut products = Vec::with_capacity(range.len());
        let mut game_indices = Vec::new();
        for i in range {
            // App ids are sparse and ascending, like Steam's.
            let app_id = AppId(10 + (i as u32) * 10 + (i as u32 % 7));
            let is_game = chance(&mut rng, cfg.game_fraction);
            let app_type = if is_game {
                AppType::Game
            } else {
                match rng.gen_range(0..4u8) {
                    0 => AppType::Demo,
                    1 => AppType::Trailer,
                    2 => AppType::Dlc,
                    _ => AppType::Tool,
                }
            };
            let genres = pick_genres(&mut rng);
            let price_cents = if is_game { pick_price(&mut rng, genres) } else { 0 };
            let multiplayer = is_game && chance(&mut rng, cfg.multiplayer_fraction);
            let game = Game {
                app_id,
                name: format!("{} {i:04}", if is_game { "Game" } else { "Extra" }),
                app_type,
                genres,
                price_cents,
                multiplayer,
                release_date: release_date(&mut rng),
                metacritic: if is_game && chance(&mut rng, 0.55) {
                    Some(rng.gen_range(40..=96))
                } else {
                    None
                },
                // Achievements are assigned after popularity is known (§9's
                // playtime coupling).
                achievements: Vec::new(),
            };
            if is_game {
                game_indices.push(i as u32);
            }
            products.push(game);
        }
        (products, game_indices)
    });
    let mut products = Vec::with_capacity(cfg.n_products);
    let mut game_indices = Vec::new();
    for (mut p, mut g) in chunks {
        products.append(&mut p);
        game_indices.append(&mut g);
    }

    // --- popularity -----------------------------------------------------------
    // Zipf over a random permutation of games (so popularity is independent
    // of app id), boosted by Action membership (drives the §6.2 playtime
    // share) and by achievement count on the 1-90 band (§9). The permutation
    // and noise are one short sequential pass (~n_games draws).
    let n_games = game_indices.len();
    let mut rank: Vec<usize> = (0..n_games).collect();
    let mut rank_rng = stage_rng(cfg.seed, "catalog.popularity", 0);
    // Fisher-Yates on a dedicated stream keeps everything deterministic.
    for i in (1..n_games).rev() {
        let j = rank_rng.gen_range(0..=i);
        rank.swap(i, j);
    }
    let mut popularity = vec![0.0; n_games];
    for (game_pos, &r) in rank.iter().enumerate() {
        let g = &products[game_indices[game_pos] as usize];
        let zipf = 1.0 / ((r + 1) as f64).powf(cfg.popularity_zipf);
        let action_boost = if g.genres.contains(Genre::Action) { 1.6 } else { 1.0 };
        let mp_boost = if g.multiplayer { 1.25 } else { 1.0 };
        let noise = (0.25 * normal(&mut rank_rng)).exp();
        popularity[game_pos] = zipf * action_boost * mp_boost * noise;
    }

    // --- achievements ----------------------------------------------------------
    // Coupled to the popularity percentile (§9); per-game draws are
    // independent given the rank, so games fan out in chunks.
    let ach_chunks = run_chunks(jobs, n_games, GAMES_CHUNK, |c, range| {
        let mut rng = stage_rng(cfg.seed, "catalog.achievements", c as u64);
        range
            .map(|game_pos| {
                let r = rank[game_pos];
                let pct = 1.0 - (r as f64 + 0.5) / n_games.max(1) as f64;
                let pi = game_indices[game_pos] as usize;
                let count = achievement_count(&mut rng, cfg, pct);
                achievements_for(&mut rng, products[pi].genres, count)
            })
            .collect::<Vec<_>>()
    });
    let mut game_pos = 0usize;
    for chunk in ach_chunks {
        for ach in chunk {
            products[game_indices[game_pos] as usize].achievements = ach;
            game_pos += 1;
        }
    }

    // Deterministic calibration of the popularity mass. Ownership and
    // playtime follow popularity, so two target shares reproduce the
    // paper's overrepresentation findings independent of which side of the
    // coin the Zipf head landed:
    // * multiplayer games → ~60% of mass (Figure 10: 57.7% of total and
    //   67.7% of two-week playtime vs 48.7% of the catalog);
    // * Action games → ~51% of mass (§6.2: 49.2% of playtime and 51.9% of
    //   value vs 38.3% of the catalog).
    // The two rescales interact (many Action games are multiplayer), so
    // alternate a few rounds of proportional fitting.
    const MP_POPULARITY_SHARE: f64 = 0.56;
    const ACTION_POPULARITY_SHARE: f64 = 0.56;
    let rescale_class = |popularity: &mut [f64], in_class: &dyn Fn(usize) -> bool, target: f64| {
        let class_mass: f64 = popularity
            .iter()
            .enumerate()
            .filter(|&(gp, _)| in_class(gp))
            .map(|(_, w)| w)
            .sum();
        let total: f64 = popularity.iter().sum();
        let rest = total - class_mass;
        if class_mass > 0.0 && rest > 0.0 {
            let factor = target / (1.0 - target) * rest / class_mass;
            for (gp, w) in popularity.iter_mut().enumerate() {
                if in_class(gp) {
                    *w *= factor;
                }
            }
        }
    };
    let is_mp = |gp: usize| products[game_indices[gp] as usize].multiplayer;
    let is_action =
        |gp: usize| products[game_indices[gp] as usize].genres.contains(Genre::Action);
    for _ in 0..4 {
        rescale_class(&mut popularity, &is_mp, MP_POPULARITY_SHARE);
        rescale_class(&mut popularity, &is_action, ACTION_POPULARITY_SHARE);
    }

    CatalogModel { products, game_indices, popularity }
}

/// Extends a catalog with `growth` × (current game count) newly released
/// games, for the second snapshot (§8): between the two crawls the Steam
/// store itself nearly doubled, which is what lets the top collector go
/// from 2,148 to 3,919 games. Sequential on the caller's stream — the
/// extension is ~2k games, a rounding error next to the per-user stages.
pub fn extend_catalog(
    rng: &mut StdRng,
    cfg: &SynthConfig,
    base_products: &[Game],
    base_game_indices: &[u32],
    base_popularity: &[f64],
    growth: f64,
) -> CatalogModel {
    let mut out = CatalogModel {
        products: base_products.to_vec(),
        game_indices: base_game_indices.to_vec(),
        popularity: base_popularity.to_vec(),
    };
    let n_new = ((base_game_indices.len() as f64) * growth) as usize;
    let max_app = base_products.last().map_or(0, |g| g.app_id.0);
    for i in 0..n_new {
        let genres = pick_genres(rng);
        // New releases land mid-popularity; give them a mid-range coupling.
        let pct = 0.3 + 0.4 * rng.gen::<f64>();
        let ach_count = achievement_count(rng, cfg, pct);
        let multiplayer = chance(rng, cfg.multiplayer_fraction);
        out.game_indices.push(out.products.len() as u32);
        out.products.push(Game {
            app_id: steam_model::AppId(max_app + 10 + (i as u32) * 10),
            name: format!("New Game {i:04}"),
            app_type: AppType::Game,
            genres,
            price_cents: pick_price(rng, genres),
            multiplayer,
            release_date: SimTime::from_ymd(2014, 1 + (i % 9) as u32, 1 + (i % 28) as u32),
            metacritic: None,
            achievements: achievements_for(rng, genres, ach_count),
        });
        // New releases enter mid-popularity.
        let zipf = 1.0 / (((i % 500) + 30) as f64).powf(cfg.popularity_zipf);
        out.popularity.push(zipf);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CatalogModel {
        generate_catalog(&SynthConfig::small(7), 1)
    }

    #[test]
    fn catalog_size_and_sorting() {
        let m = model();
        assert_eq!(m.products.len(), 6_156);
        for w in m.products.windows(2) {
            assert!(w[0].app_id < w[1].app_id);
        }
        assert_eq!(m.popularity.len(), m.game_indices.len());
    }

    #[test]
    fn game_fraction_near_config() {
        let m = model();
        let frac = m.game_indices.len() as f64 / m.products.len() as f64;
        assert!((frac - 0.39).abs() < 0.03, "game fraction = {frac}");
        // The paper's collector owned 2,148 games ≈ 90% of games available.
        let n_games = m.game_indices.len();
        assert!((2_000..2_800).contains(&n_games), "n_games = {n_games}");
    }

    #[test]
    fn action_share_matches_paper() {
        let m = model();
        let action = m
            .game_indices
            .iter()
            .filter(|&&i| m.products[i as usize].genres.contains(Genre::Action))
            .count() as f64
            / m.game_indices.len() as f64;
        assert!((action - 0.381).abs() < 0.05, "action share = {action}");
    }

    #[test]
    fn multiplayer_share_matches_paper() {
        let m = model();
        let mp = m
            .game_indices
            .iter()
            .filter(|&&i| m.products[i as usize].multiplayer)
            .count() as f64
            / m.game_indices.len() as f64;
        assert!((mp - 0.487).abs() < 0.05, "multiplayer share = {mp}");
    }

    #[test]
    fn achievement_stats_match_paper() {
        let m = model();
        let counts: Vec<u32> = m
            .game_indices
            .iter()
            .map(|&i| m.products[i as usize].achievement_count() as u32)
            .collect();
        let with: Vec<u32> = counts.iter().copied().filter(|&c| c > 0).collect();
        let zero_rate = 1.0 - with.len() as f64 / counts.len() as f64;
        assert!((zero_rate - 0.25).abs() < 0.06, "zero rate = {zero_rate}");

        let mut sorted = with.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        assert!((15..=35).contains(&median), "median = {median}");
        let mean: f64 = with.iter().map(|&c| f64::from(c)).sum::<f64>() / with.len() as f64;
        assert!((22.0..50.0).contains(&mean), "mean = {mean}");
        let max = *sorted.last().unwrap();
        assert!(max <= 1_650, "max = {max}");
    }

    #[test]
    fn adventure_completes_more_than_strategy() {
        let m = model();
        let mean_for = |genre: Genre| {
            let vals: Vec<f64> = m
                .game_indices
                .iter()
                .map(|&i| &m.products[i as usize])
                .filter(|g| {
                    g.genres.contains(genre)
                        && (genre == Genre::Adventure || !g.genres.contains(Genre::Adventure))
                })
                .filter_map(|g| g.mean_completion_pct())
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        let adventure = mean_for(Genre::Adventure);
        let strategy = mean_for(Genre::Strategy);
        assert!(
            adventure > strategy + 2.0,
            "adventure {adventure:.1}% vs strategy {strategy:.1}%"
        );
    }

    #[test]
    fn prices_are_point_values() {
        let m = model();
        let valid: std::collections::HashSet<u32> =
            PRICE_POINTS.iter().map(|(c, _)| *c).chain([0]).collect();
        for &gi in &m.game_indices {
            assert!(valid.contains(&m.products[gi as usize].price_cents));
        }
        // Free-to-play games are free.
        for &gi in &m.game_indices {
            let g = &m.products[gi as usize];
            if g.genres.contains(Genre::FreeToPlay) {
                assert_eq!(g.price_cents, 0);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SynthConfig::small(42);
        let a = generate_catalog(&cfg, 1);
        let b = generate_catalog(&cfg, 1);
        assert_eq!(a.products, b.products);
        assert_eq!(a.popularity, b.popularity);
    }

    #[test]
    fn jobs_invariant() {
        let cfg = SynthConfig::small(42);
        let serial = generate_catalog(&cfg, 1);
        let parallel = generate_catalog(&cfg, 4);
        assert_eq!(serial.products, parallel.products);
        assert_eq!(serial.game_indices, parallel.game_indices);
        assert_eq!(serial.popularity, parallel.popularity);
    }

    #[test]
    fn popularity_positive_and_skewed() {
        let m = model();
        assert!(m.popularity.iter().all(|&p| p > 0.0));
        let total: f64 = m.popularity.iter().sum();
        let mut sorted = m.popularity.clone();
        sorted.sort_by(|a, b| b.total_cmp(a));
        let top20: f64 = sorted[..sorted.len() / 5].iter().sum();
        assert!(top20 / total > 0.5, "popularity should concentrate: {}", top20 / total);
    }
}
