//! Per-stage, per-chunk seed streams.
//!
//! The generator used to thread one `StdRng` through every stage, which
//! forced a single serial draw order. Downstream consumers only ever see
//! *distributions* (percentile ladders, tail fits, shares), never the draw
//! order, so the sampling schedule is free to change as long as a given
//! `(master seed, stage, chunk)` always produces the same values. Each
//! stage therefore derives an independent RNG stream per fixed-size chunk:
//!
//! ```text
//! seed(stage, chunk) = splitmix64(splitmix64(master ^ fnv1a(stage)) ^ chunk·φ)
//! ```
//!
//! * the FNV-1a hash of the stage tag separates stages: no two tags share a
//!   stream, and adding a stage never perturbs another stage's draws;
//! * the golden-ratio multiply spreads consecutive chunk indices across the
//!   64-bit space before the final mix, so chunk 0 and chunk 1 are as
//!   unrelated as two random seeds;
//! * the double splitmix64 finalization is the same mixer `StdRng`'s own
//!   `seed_from_u64` expansion builds on, giving well-distributed state even
//!   for small master seeds.
//!
//! Chunk sizes are compile-time constants (see [`crate::par`]) and **never**
//! depend on the worker count, which is what makes `--jobs N` byte-identical
//! for every N.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// 64-bit FNV-1a over the stage tag.
fn fnv1a64(tag: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in tag.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer (Steele et al.), the standard 64-bit avalanche mix.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the seed for one `(stage, chunk)` stream of a master seed.
pub fn derive_seed(master: u64, stage: &str, chunk: u64) -> u64 {
    let stage_mixed = splitmix64(master ^ fnv1a64(stage));
    splitmix64(stage_mixed ^ chunk.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// A fresh RNG positioned at the start of the `(stage, chunk)` stream.
pub fn stage_rng(master: u64, stage: &str, chunk: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, stage, chunk))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic() {
        assert_eq!(derive_seed(1, "accounts", 0), derive_seed(1, "accounts", 0));
        let mut a = stage_rng(42, "catalog.products", 3);
        let mut b = stage_rng(42, "catalog.products", 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn stages_and_chunks_separate_streams() {
        let base = derive_seed(7, "accounts", 0);
        assert_ne!(base, derive_seed(7, "accounts", 1));
        assert_ne!(base, derive_seed(7, "ownership", 0));
        assert_ne!(base, derive_seed(8, "accounts", 0));
    }

    #[test]
    fn no_collisions_across_a_plausible_schedule() {
        // Every stage tag × 4k chunks × a few seeds: all seeds distinct.
        let tags = [
            "accounts",
            "catalog.products",
            "catalog.popularity",
            "catalog.achievements",
            "friends.targets",
            "friends.stubs",
            "friends.times",
            "ownership",
            "groups.universe",
            "groups.memberships",
            "groups.recruit",
            "evolve.catalog",
            "evolve.users",
            "panel.sample",
            "panel.days",
        ];
        let mut seen = std::collections::HashSet::new();
        for master in [0u64, 1, 2016] {
            for tag in tags {
                for chunk in 0..256u64 {
                    assert!(
                        seen.insert(derive_seed(master, tag, chunk)),
                        "collision at {master}/{tag}/{chunk}"
                    );
                }
            }
        }
    }

    #[test]
    fn small_master_seeds_produce_spread_draws() {
        // Guard against a weak mixer: adjacent chunk streams must not emit
        // correlated first draws.
        let firsts: Vec<f64> =
            (0..64).map(|c| stage_rng(0, "accounts", c).gen::<f64>()).collect();
        let mean = firsts.iter().sum::<f64>() / firsts.len() as f64;
        assert!((mean - 0.5).abs() < 0.2, "mean of first draws = {mean}");
    }
}
