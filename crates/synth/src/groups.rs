//! Group universe and membership generation.
//!
//! Calibration targets:
//! * group sizes heavy-tailed, membership counts per user long-tailed
//!   (Table 3: 2 / 7 / 13 / 22 / 62 among members; §4.2);
//! * the top-250 groups mix per Table 2 (Game Server 45.6%, ...);
//! * game-focused groups whose members actually play the focal game, giving
//!   Figure 3's spread of distinct-games-played per group.
//!
//! Three seed streams: `groups.universe` (sequential — the group list and
//! the popularity shuffle are tiny), `groups.memberships` (fanned out over
//! user chunks; users join independently given the shared group table), and
//! `groups.recruit` (sequential — the devotee pass mutates many users'
//! membership lists, and is a scan over groups, not users).

use rand::rngs::StdRng;
use rand::Rng;
use steam_model::{Group, GroupId, GroupKind, OwnedGame};

use crate::catalog::CatalogModel;
use crate::config::SynthConfig;
use crate::par::{run_chunks, USERS_CHUNK};
use crate::samplers::{categorical, chance, lognormal, zipf_weights, AliasTable};
use crate::seed::stage_rng;

/// The group universe plus per-user membership lists (sorted, deduped).
#[derive(Clone, Debug)]
pub struct GroupModel {
    pub groups: Vec<Group>,
    /// Per-user indices into `groups`, parallel to the population.
    pub memberships: Vec<Vec<u32>>,
    /// Focal game (index into `catalog.game_indices`) for game-centric
    /// groups.
    pub focal_game: Vec<Option<u32>>,
}

fn pick_kind(rng: &mut StdRng) -> GroupKind {
    // Table 2 describes the *largest* groups; the full universe skews more
    // toward small single-game and special-interest groups, but using the
    // same mix keeps the top-250 breakdown on target.
    let shares: Vec<f64> = GroupKind::TABLE2_SHARES.iter().map(|(_, s)| *s).collect();
    GroupKind::TABLE2_SHARES[categorical(rng, &shares)].0
}

/// One user's membership list (sorted, deduped).
fn join_groups(
    rng: &mut StdRng,
    cfg: &SynthConfig,
    lib: &[OwnedGame],
    groups_of_game: &[Vec<u32>],
    group_table: &AliasTable,
    game_index_of_app: &std::collections::HashMap<steam_model::AppId, u32>,
) -> Vec<u32> {
    if !chance(rng, cfg.group_member_rate) {
        return Vec::new();
    }
    // Lognormal body with a small Pareto tail (Table 3's membership
    // ladder runs 2 / 7 / 13 / 22 / 62 — too heavy for a lognormal
    // alone).
    let raw = if chance(rng, 0.05) {
        crate::samplers::pareto(rng, 10.0, 1.5)
    } else {
        lognormal(rng, cfg.membership_mu, cfg.membership_sigma)
    };
    let n_m = (raw.round() as usize).clamp(1, 400);
    let played: Vec<u32> = lib
        .iter()
        .filter(|o| o.played())
        .filter_map(|o| game_index_of_app.get(&o.app_id).copied())
        .collect();
    let mut mine: Vec<u32> = Vec::with_capacity(n_m);
    let mut attempts = 0;
    while mine.len() < n_m && attempts < n_m * 10 {
        attempts += 1;
        let g = if !played.is_empty() && chance(rng, cfg.game_directed_membership) {
            // Join a group focused on a game I actually play.
            let game = played[rng.gen_range(0..played.len())] as usize;
            let candidates = &groups_of_game[game];
            if candidates.is_empty() {
                group_table.sample(rng) as u32
            } else {
                candidates[rng.gen_range(0..candidates.len())]
            }
        } else {
            group_table.sample(rng) as u32
        };
        if !mine.contains(&g) {
            mine.push(g);
        }
    }
    mine.sort_unstable();
    mine
}

/// Generates groups and memberships.
pub fn generate_groups(
    cfg: &SynthConfig,
    ownerships: &[Vec<OwnedGame>],
    catalog: &CatalogModel,
    jobs: usize,
) -> GroupModel {
    let n_groups = cfg.n_groups;
    let n_games = catalog.game_indices.len();

    // --- the group universe ---------------------------------------------------
    let rng = &mut stage_rng(cfg.seed, "groups.universe", 0);
    let mut groups = Vec::with_capacity(n_groups);
    let mut focal_game = Vec::with_capacity(n_groups);
    // Focal games follow popularity so big games host big server groups.
    let popularity_table = AliasTable::new(&catalog.popularity);
    for i in 0..n_groups {
        let kind = pick_kind(rng);
        let focal = match kind {
            GroupKind::GameServer | GroupKind::SingleGame => {
                Some(popularity_table.sample(rng) as u32)
            }
            // Gaming communities are multi-game; publishers/steam/special
            // interest are not game-scoped.
            _ => None,
        };
        groups.push(Group {
            id: GroupId(1000 + i as u32),
            kind,
            name: format!("{} group {i:05}", kind.as_str()),
        });
        focal_game.push(focal);
    }

    // Map: game -> groups focal on it (for the game-directed join path).
    let mut groups_of_game: Vec<Vec<u32>> = vec![Vec::new(); n_games];
    for (gi, focal) in focal_game.iter().enumerate() {
        if let Some(game) = focal {
            groups_of_game[*game as usize].push(gi as u32);
        }
    }
    // Global popularity of groups: Zipf over a shuffled order.
    let mut shuffled: Vec<usize> = (0..n_groups).collect();
    for i in (1..n_groups).rev() {
        let j = rng.gen_range(0..=i);
        shuffled.swap(i, j);
    }
    let zipf = zipf_weights(n_groups, 1.05);
    let mut group_weight = vec![0.0; n_groups];
    for (rank, &g) in shuffled.iter().enumerate() {
        group_weight[g] = zipf[rank];
    }
    let group_table = AliasTable::new(&group_weight);

    // Map from app id to game index for the directed path.
    let mut game_index_of_app = std::collections::HashMap::new();
    for (gi, &pi) in catalog.game_indices.iter().enumerate() {
        game_index_of_app.insert(catalog.products[pi as usize].app_id, gi as u32);
    }

    // --- memberships ----------------------------------------------------------
    let chunks = run_chunks(jobs, ownerships.len(), USERS_CHUNK, |c, range| {
        let mut rng = stage_rng(cfg.seed, "groups.memberships", c as u64);
        range
            .map(|u| {
                join_groups(
                    &mut rng,
                    cfg,
                    &ownerships[u],
                    &groups_of_game,
                    &group_table,
                    &game_index_of_app,
                )
            })
            .collect::<Vec<_>>()
    });
    let mut memberships = Vec::with_capacity(ownerships.len());
    for mut c in chunks {
        memberships.append(&mut c);
    }

    // --- dedicated-community recruitment ---------------------------------------
    // §4.2: 4.97% of the large groups have members who devote ≥90% of their
    // collective playtime to a single game. The user-driven join loop cannot
    // produce such groups (members bring their whole libraries); these
    // communities recruit the *devotees* of their game — users whose own
    // playtime is already concentrated on it. A slice of single-game groups
    // does exactly that here.
    let mut devotees_of_game: Vec<Vec<u32>> = vec![Vec::new(); n_games];
    for (u, lib) in ownerships.iter().enumerate() {
        let total: u64 = lib.iter().map(|o| u64::from(o.playtime_forever_min)).sum();
        if total == 0 {
            continue;
        }
        if let Some(top) = lib.iter().max_by_key(|o| o.playtime_forever_min) {
            if u64::from(top.playtime_forever_min) * 10 >= total * 9 {
                if let Some(&gi) = game_index_of_app.get(&top.app_id) {
                    devotees_of_game[gi as usize].push(u as u32);
                }
            }
        }
    }
    let rng = &mut stage_rng(cfg.seed, "groups.recruit", 0);
    for (g, focal) in focal_game.iter().enumerate() {
        let Some(game) = focal else { continue };
        // A small slice of single-game groups are dedicated communities —
        // calibrated so ~5% of the ≥100-member groups end up ≥90% focused.
        if groups[g].kind != GroupKind::SingleGame || !chance(rng, 0.03) {
            continue;
        }
        let pool = &devotees_of_game[*game as usize];
        if pool.len() < 110 {
            continue;
        }
        // Recruit a bounded slice of the devotee pool; only existing group
        // joiners sign up, so the overall member rate is unchanged.
        let quota = rng.gen_range(110..=pool.len().min(400));
        let mut recruited = 0usize;
        for &u in pool.iter() {
            if recruited >= quota {
                break;
            }
            let ms = &mut memberships[u as usize];
            if ms.is_empty() || ms.len() >= 400 {
                continue;
            }
            if let Err(pos) = ms.binary_search(&(g as u32)) {
                ms.insert(pos, g as u32);
                recruited += 1;
            }
        }
    }

    GroupModel { groups, memberships, focal_game }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accounts::generate_population;
    use crate::catalog::generate_catalog;
    use crate::ownership::generate_ownership;

    fn build_libs(cfg: &SynthConfig) -> (Vec<Vec<OwnedGame>>, CatalogModel) {
        let catalog = generate_catalog(cfg, 1);
        let pop = generate_population(cfg, 1);
        let libs = generate_ownership(cfg, &pop, &catalog, 1);
        (libs, catalog)
    }

    fn build() -> (GroupModel, SynthConfig) {
        let cfg = SynthConfig::small(23);
        let (libs, catalog) = build_libs(&cfg);
        (generate_groups(&cfg, &libs, &catalog, 1), cfg)
    }

    #[test]
    fn structure_valid() {
        let (gm, cfg) = build();
        assert_eq!(gm.groups.len(), cfg.n_groups);
        assert_eq!(gm.focal_game.len(), cfg.n_groups);
        for ms in &gm.memberships {
            for pair in ms.windows(2) {
                assert!(pair[0] < pair[1], "memberships sorted + unique");
            }
            for &g in ms {
                assert!((g as usize) < cfg.n_groups);
            }
        }
    }

    #[test]
    fn member_rate_near_config() {
        let (gm, cfg) = build();
        let members = gm.memberships.iter().filter(|m| !m.is_empty()).count() as f64;
        let rate = members / gm.memberships.len() as f64;
        assert!((rate - cfg.group_member_rate).abs() < 0.04, "member rate = {rate}");
    }

    #[test]
    fn membership_percentiles_near_paper() {
        let (gm, _) = build();
        let mut counts: Vec<usize> = gm
            .memberships
            .iter()
            .filter(|m| !m.is_empty())
            .map(Vec::len)
            .collect();
        counts.sort_unstable();
        let p = |q: f64| counts[((counts.len() - 1) as f64 * q) as usize];
        // Paper: 2 / 7 / 13 / 22 / 62.
        assert!((1..=4).contains(&p(0.5)), "p50 = {}", p(0.5));
        assert!((4..=12).contains(&p(0.8)), "p80 = {}", p(0.8));
        assert!((30..=120).contains(&p(0.99)), "p99 = {}", p(0.99));
    }

    #[test]
    fn group_sizes_heavy_tailed() {
        let (gm, cfg) = build();
        let mut sizes = vec![0u64; cfg.n_groups];
        for ms in &gm.memberships {
            for &g in ms {
                sizes[g as usize] += 1;
            }
        }
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = sizes.iter().sum();
        let top10: u64 = sizes[..cfg.n_groups / 10].iter().sum();
        assert!(
            top10 as f64 / total as f64 > 0.5,
            "top-10% groups hold {} of members",
            top10 as f64 / total as f64
        );
    }

    #[test]
    fn game_scoped_kinds_have_focal_games() {
        let (gm, _) = build();
        for (g, focal) in gm.groups.iter().zip(&gm.focal_game) {
            match g.kind {
                GroupKind::GameServer | GroupKind::SingleGame => {
                    assert!(focal.is_some(), "{:?} needs a focal game", g.kind)
                }
                _ => assert!(focal.is_none()),
            }
        }
    }

    #[test]
    fn table2_mix_roughly_respected() {
        let (gm, cfg) = build();
        let server = gm
            .groups
            .iter()
            .filter(|g| g.kind == GroupKind::GameServer)
            .count() as f64;
        let frac = server / cfg.n_groups as f64;
        assert!((frac - 0.456).abs() < 0.05, "game-server share = {frac}");
    }

    #[test]
    fn jobs_invariant() {
        let cfg = SynthConfig::small(23);
        let (libs, catalog) = build_libs(&cfg);
        let serial = generate_groups(&cfg, &libs, &catalog, 1);
        let parallel = generate_groups(&cfg, &libs, &catalog, 4);
        assert_eq!(serial.groups, parallel.groups);
        assert_eq!(serial.memberships, parallel.memberships);
        assert_eq!(serial.focal_game, parallel.focal_game);
    }
}
