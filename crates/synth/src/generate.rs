//! The generator facade: orchestrates catalog → accounts → friendships →
//! ownership → groups → second snapshot → week panel, all from one seed.
//!
//! Every stage draws from its own [`crate::seed`] stream, so stages no
//! longer share a threaded-through RNG: the catalog and the population are
//! generated concurrently, the per-user stages fan out over fixed chunks
//! (see [`crate::par`]), and the output is byte-identical for every
//! `jobs >= 1`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use steam_model::{Snapshot, WeekPanel};

use crate::accounts::{generate_population, Latents};
use crate::catalog::generate_catalog;
use crate::config::SynthConfig;
use crate::evolve::evolve_snapshot;
use crate::friends::generate_friendships;
use crate::groups::generate_groups;
use crate::ownership::generate_ownership;
use crate::panel::generate_panel;

/// The latent catalog state the snapshots don't carry: which products are
/// games, and their popularity weights (both parallel to the *first*
/// snapshot's catalog).
#[derive(Clone, Debug)]
pub struct CatalogLatents {
    /// Indices into `snapshot.catalog` of the playable games.
    pub game_indices: Vec<u32>,
    /// Unnormalized ownership propensity, parallel to `game_indices`.
    pub popularity: Vec<f64>,
}

/// Everything the experiments need: both snapshots, the week panel, and the
/// latent state (useful for validation and the examples). The snapshots own
/// the accounts and the catalog — the latents hold only what the snapshots
/// don't record.
#[derive(Clone, Debug)]
pub struct World {
    pub snapshot: Snapshot,
    pub second_snapshot: Snapshot,
    pub panel: WeekPanel,
    /// Per-user hidden state, parallel to `snapshot.accounts`.
    pub latents: Latents,
    pub catalog_latents: CatalogLatents,
    pub config: SynthConfig,
}

/// Wall time of one synthesis stage.
#[derive(Clone, Debug)]
pub struct StageTiming {
    pub stage: &'static str,
    pub wall: Duration,
}

/// Per-stage timing report for one `generate_world` run — what
/// `steam-cli generate --timings` prints to stderr.
#[derive(Clone, Debug)]
pub struct GenTimings {
    /// Worker count the run was scheduled on.
    pub jobs: usize,
    /// End-to-end wall time (less than the stage sum when the catalog and
    /// population stages overlap).
    pub wall: Duration,
    /// Per-stage wall times, in pipeline order.
    pub stages: Vec<StageTiming>,
}

impl GenTimings {
    /// Sum of stage wall times.
    pub fn busy(&self) -> Duration {
        self.stages.iter().map(|t| t.wall).sum()
    }

    /// Human-readable timing table, slowest stage first.
    pub fn render_table(&self) -> String {
        let mut rows: Vec<&StageTiming> = self.stages.iter().collect();
        rows.sort_by_key(|t| std::cmp::Reverse(t.wall));
        let name_w =
            rows.iter().map(|t| t.stage.len()).max().unwrap_or(5).max("stage".len());
        let mut out = String::new();
        out.push_str(&format!("{:<name_w$}  {:>10}  {:>6}\n", "stage", "wall", "share"));
        let busy = self.busy().as_secs_f64();
        for t in rows {
            let share = if busy > 0.0 { t.wall.as_secs_f64() / busy * 100.0 } else { 0.0 };
            out.push_str(&format!("{:<name_w$}  {:>10.3?}  {:>5.1}%\n", t.stage, t.wall, share));
        }
        out.push_str(&format!("total {:.3?} on {} workers\n", self.wall, self.jobs));
        out
    }
}

/// Deterministic population generator.
pub struct Generator {
    config: SynthConfig,
    registry: Option<Arc<steam_obs::Registry>>,
}

impl Generator {
    /// Panics if the configuration fails validation — a config bug, not a
    /// runtime condition.
    pub fn new(config: SynthConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid SynthConfig: {e}");
        }
        Generator { config, registry: None }
    }

    /// Records `synth_stage_duration_seconds{stage}` histograms into
    /// `registry` on every generation run.
    pub fn with_registry(mut self, registry: Arc<steam_obs::Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// Generates only the first snapshot (cheapest path; most experiments
    /// need nothing else).
    pub fn generate(&self) -> Snapshot {
        self.generate_world().snapshot
    }

    /// Generates the full world single-threaded. Parallel runs via
    /// [`generate_world_jobs`](Self::generate_world_jobs) produce the
    /// byte-identical world.
    pub fn generate_world(&self) -> World {
        self.generate_world_jobs(1)
    }

    /// Generates the full world on up to `jobs` worker threads.
    pub fn generate_world_jobs(&self, jobs: usize) -> World {
        self.generate_world_timed(jobs).0
    }

    fn observe(&self, stage: &'static str, wall: Duration) {
        if let Some(reg) = &self.registry {
            reg.histogram("synth_stage_duration_seconds", &[("stage", stage)])
                .record_duration(wall);
        }
    }

    /// Generates the full world and reports per-stage wall times.
    pub fn generate_world_timed(&self, jobs: usize) -> (World, GenTimings) {
        let cfg = &self.config;
        let jobs = jobs.max(1);
        let run_start = Instant::now();
        let mut stages: Vec<StageTiming> = Vec::with_capacity(7);
        let mut stage = |name: &'static str, wall: Duration| {
            self.observe(name, wall);
            stages.push(StageTiming { stage: name, wall });
        };

        // The catalog and the population share no state, so with spare
        // workers they run concurrently; each stage still fans out
        // internally over its own chunk streams.
        let (catalog_model, population, t_cat, t_pop) = if jobs > 1 {
            crossbeam::thread::scope(|s| {
                let handle = s.spawn(|_| {
                    let t = Instant::now();
                    let c = generate_catalog(cfg, jobs);
                    (c, t.elapsed())
                });
                let t = Instant::now();
                let population = generate_population(cfg, jobs);
                let t_pop = t.elapsed();
                let (catalog_model, t_cat) = handle.join().expect("catalog stage panicked");
                (catalog_model, population, t_cat, t_pop)
            })
            .expect("catalog/population stage panicked")
        } else {
            let t = Instant::now();
            let catalog_model = generate_catalog(cfg, jobs);
            let t_cat = t.elapsed();
            let t = Instant::now();
            let population = generate_population(cfg, jobs);
            (catalog_model, population, t_cat, t.elapsed())
        };
        stage("catalog", t_cat);
        stage("accounts", t_pop);

        let t = Instant::now();
        let friendships = generate_friendships(cfg, &population, jobs);
        stage("friendships", t.elapsed());

        let t = Instant::now();
        let ownerships = generate_ownership(cfg, &population, &catalog_model, jobs);
        stage("ownership", t.elapsed());

        let t = Instant::now();
        let groups = generate_groups(cfg, &ownerships, &catalog_model, jobs);
        stage("groups", t.elapsed());

        // The snapshot takes ownership of the accounts and the product
        // catalog; only the latent vectors stay behind on the World.
        let crate::accounts::Population { accounts, scanned_id_space, latents } = population;
        let crate::catalog::CatalogModel { products, game_indices, popularity } = catalog_model;
        let snapshot = Snapshot {
            collected_at: steam_model::SimTime::from_ymd(2013, 11, 5),
            scanned_id_space,
            accounts,
            friendships,
            ownerships,
            groups: groups.groups,
            memberships: groups.memberships,
            catalog: products,
        };

        let t = Instant::now();
        let second_snapshot =
            evolve_snapshot(cfg, &snapshot, &latents, &game_indices, &popularity, jobs);
        stage("evolve", t.elapsed());

        let t = Instant::now();
        let panel = generate_panel(cfg.seed, &second_snapshot, jobs);
        stage("panel", t.elapsed());

        let timings = GenTimings { jobs, wall: run_start.elapsed(), stages };
        let world = World {
            snapshot,
            second_snapshot,
            panel,
            latents,
            catalog_latents: CatalogLatents { game_indices, popularity },
            config: cfg.clone(),
        };
        (world, timings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_is_structurally_valid() {
        let world = Generator::new(SynthConfig::small(1)).generate_world();
        world.snapshot.validate().unwrap();
        world.second_snapshot.validate().unwrap();
        assert_eq!(world.snapshot.n_users(), world.config.n_users);
        assert!(world.snapshot.n_friendships() > 0);
        assert!(world.snapshot.n_owned_games() > 0);
        assert!(world.snapshot.n_memberships() > 0);
        assert!(!world.panel.is_empty());
        assert_eq!(world.latents.engagement.len(), world.snapshot.n_users());
        assert_eq!(
            world.catalog_latents.game_indices.len(),
            world.catalog_latents.popularity.len()
        );
    }

    #[test]
    fn fully_deterministic() {
        let a = Generator::new(SynthConfig::small(77)).generate_world();
        let b = Generator::new(SynthConfig::small(77)).generate_world();
        assert_eq!(a.snapshot.friendships, b.snapshot.friendships);
        assert_eq!(a.snapshot.ownerships, b.snapshot.ownerships);
        assert_eq!(a.second_snapshot.ownerships, b.second_snapshot.ownerships);
        assert_eq!(a.panel.users, b.panel.users);
        assert_eq!(a.panel.daily_minutes, b.panel.daily_minutes);
    }

    #[test]
    fn jobs_do_not_change_the_world() {
        let a = Generator::new(SynthConfig::small(77)).generate_world_jobs(1);
        let b = Generator::new(SynthConfig::small(77)).generate_world_jobs(4);
        assert_eq!(a.snapshot.accounts, b.snapshot.accounts);
        assert_eq!(a.snapshot.friendships, b.snapshot.friendships);
        assert_eq!(a.snapshot.ownerships, b.snapshot.ownerships);
        assert_eq!(a.snapshot.memberships, b.snapshot.memberships);
        assert_eq!(a.snapshot.catalog, b.snapshot.catalog);
        assert_eq!(a.second_snapshot.ownerships, b.second_snapshot.ownerships);
        assert_eq!(a.panel.users, b.panel.users);
        assert_eq!(a.panel.daily_minutes, b.panel.daily_minutes);
    }

    #[test]
    fn timings_cover_every_stage() {
        let (_, timings) = Generator::new(SynthConfig::small(5)).generate_world_timed(2);
        let names: Vec<&str> = timings.stages.iter().map(|t| t.stage).collect();
        assert_eq!(
            names,
            ["catalog", "accounts", "friendships", "ownership", "groups", "evolve", "panel"]
        );
        assert_eq!(timings.jobs, 2);
        let table = timings.render_table();
        assert!(table.contains("stage") && table.contains("total"));
    }

    #[test]
    fn registry_records_stage_histograms() {
        let registry = Arc::new(steam_obs::Registry::new());
        let _ = Generator::new(SynthConfig::small(5))
            .with_registry(registry.clone())
            .generate_world();
        let text = registry.render_prometheus();
        assert!(
            text.contains("synth_stage_duration_seconds"),
            "missing stage histogram in:\n{text}"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = Generator::new(SynthConfig::small(1)).generate_world();
        let b = Generator::new(SynthConfig::small(2)).generate_world();
        assert_ne!(a.snapshot.friendships, b.snapshot.friendships);
    }

    #[test]
    #[should_panic(expected = "invalid SynthConfig")]
    fn invalid_config_panics() {
        let mut cfg = SynthConfig::small(1);
        cfg.owner_rate = 2.0;
        Generator::new(cfg);
    }

    #[test]
    fn aggregate_scale_matches_paper_ratios() {
        // The paper: 108.7M users, 384.3M owned games (3.54/user), 196.4M
        // friendships (1.81/user), 81.3M memberships (0.75/user).
        let world = Generator::new(SynthConfig::small(3)).generate_world();
        let n = world.snapshot.n_users() as f64;
        let games_per_user = world.snapshot.n_owned_games() as f64 / n;
        let edges_per_user = world.snapshot.n_friendships() as f64 / n;
        let memberships_per_user = world.snapshot.n_memberships() as f64 / n;
        assert!((2.0..6.5).contains(&games_per_user), "games/user = {games_per_user}");
        assert!((1.1..2.6).contains(&edges_per_user), "edges/user = {edges_per_user}");
        assert!(
            (0.4..2.2).contains(&memberships_per_user),
            "memberships/user = {memberships_per_user}"
        );
    }
}
