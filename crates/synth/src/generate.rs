//! The generator facade: orchestrates catalog → accounts → friendships →
//! ownership → groups → second snapshot → week panel, all from one seed.

use rand::rngs::StdRng;
use rand::SeedableRng;
use steam_model::{Snapshot, WeekPanel};

use crate::accounts::{generate_population, Population};
use crate::catalog::{generate_catalog, CatalogModel};
use crate::config::SynthConfig;
use crate::evolve::evolve_snapshot;
use crate::friends::generate_friendships;
use crate::groups::generate_groups;
use crate::ownership::generate_ownership;
use crate::panel::generate_panel;

/// Everything the experiments need: both snapshots, the week panel, and the
/// latent state (useful for validation and the examples).
#[derive(Clone, Debug)]
pub struct World {
    pub snapshot: Snapshot,
    pub second_snapshot: Snapshot,
    pub panel: WeekPanel,
    pub population: Population,
    pub catalog_model: CatalogModel,
    pub config: SynthConfig,
}

/// Deterministic population generator.
pub struct Generator {
    config: SynthConfig,
}

impl Generator {
    /// Panics if the configuration fails validation — a config bug, not a
    /// runtime condition.
    pub fn new(config: SynthConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid SynthConfig: {e}");
        }
        Generator { config }
    }

    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// Generates only the first snapshot (cheapest path; most experiments
    /// need nothing else).
    pub fn generate(&self) -> Snapshot {
        self.generate_world().snapshot
    }

    /// Generates the full world: both snapshots plus the week panel.
    pub fn generate_world(&self) -> World {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let catalog_model = generate_catalog(&mut rng, cfg);
        let population = generate_population(&mut rng, cfg);
        let friendships = generate_friendships(&mut rng, cfg, &population);
        let ownerships = generate_ownership(&mut rng, cfg, &population, &catalog_model);
        let groups = generate_groups(&mut rng, cfg, &ownerships, &catalog_model);

        let snapshot = Snapshot {
            collected_at: steam_model::SimTime::from_ymd(2013, 11, 5),
            scanned_id_space: population.scanned_id_space,
            accounts: population.accounts.clone(),
            friendships,
            ownerships,
            groups: groups.groups,
            memberships: groups.memberships,
            catalog: catalog_model.products.clone(),
        };

        let second_snapshot =
            evolve_snapshot(&mut rng, cfg, &snapshot, &population, &catalog_model);
        let panel = generate_panel(&mut rng, &second_snapshot);

        World { snapshot, second_snapshot, panel, population, catalog_model, config: cfg.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_is_structurally_valid() {
        let world = Generator::new(SynthConfig::small(1)).generate_world();
        world.snapshot.validate().unwrap();
        world.second_snapshot.validate().unwrap();
        assert_eq!(world.snapshot.n_users(), world.config.n_users);
        assert!(world.snapshot.n_friendships() > 0);
        assert!(world.snapshot.n_owned_games() > 0);
        assert!(world.snapshot.n_memberships() > 0);
        assert!(!world.panel.is_empty());
    }

    #[test]
    fn fully_deterministic() {
        let a = Generator::new(SynthConfig::small(77)).generate_world();
        let b = Generator::new(SynthConfig::small(77)).generate_world();
        assert_eq!(a.snapshot.friendships, b.snapshot.friendships);
        assert_eq!(a.snapshot.ownerships, b.snapshot.ownerships);
        assert_eq!(a.second_snapshot.ownerships, b.second_snapshot.ownerships);
        assert_eq!(a.panel.users, b.panel.users);
        assert_eq!(a.panel.daily_minutes, b.panel.daily_minutes);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Generator::new(SynthConfig::small(1)).generate_world();
        let b = Generator::new(SynthConfig::small(2)).generate_world();
        assert_ne!(a.snapshot.friendships, b.snapshot.friendships);
    }

    #[test]
    #[should_panic(expected = "invalid SynthConfig")]
    fn invalid_config_panics() {
        let mut cfg = SynthConfig::small(1);
        cfg.owner_rate = 2.0;
        Generator::new(cfg);
    }

    #[test]
    fn aggregate_scale_matches_paper_ratios() {
        // The paper: 108.7M users, 384.3M owned games (3.54/user), 196.4M
        // friendships (1.81/user), 81.3M memberships (0.75/user).
        let world = Generator::new(SynthConfig::small(3)).generate_world();
        let n = world.snapshot.n_users() as f64;
        let games_per_user = world.snapshot.n_owned_games() as f64 / n;
        let edges_per_user = world.snapshot.n_friendships() as f64 / n;
        let memberships_per_user = world.snapshot.n_memberships() as f64 / n;
        assert!((2.0..6.5).contains(&games_per_user), "games/user = {games_per_user}");
        assert!((1.1..2.6).contains(&edges_per_user), "edges/user = {edges_per_user}");
        assert!(
            (0.4..2.2).contains(&memberships_per_user),
            "memberships/user = {memberships_per_user}"
        );
    }
}
