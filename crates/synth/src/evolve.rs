//! Second-snapshot evolution (§8).
//!
//! The paper re-crawled game data for the *same* 108.7 M users roughly a
//! year later and found the tails exploding while the 80th percentiles
//! barely moved: max library 2,148 → 3,919 games but 80th percentile only
//! 10 → 15; max account value $24,315 → $46,634 but 80th percentile
//! $150.88 → $224.93. The mechanism we implement: growth is multiplicative
//! in the current holdings (collectors keep collecting at their rate), so a
//! year multiplies the tail while barely moving the body.
//!
//! Two seed streams: `evolve.catalog` (sequential — the store extension is
//! ~2k games) and `evolve.users` (fanned out over user chunks; each user's
//! year of acquisitions and playtime growth is independent given the
//! extended popularity table).

use rand::rngs::StdRng;
use rand::Rng;
use steam_model::{Game, OwnedGame, Snapshot};

use crate::accounts::{Archetype, Latents};
use crate::catalog::CatalogModel;
use crate::config::SynthConfig;
use crate::par::{run_chunks, USERS_CHUNK};
use crate::samplers::{chance, truncated_power_law_bounded, AliasTable};
use crate::seed::stage_rng;

/// Evolves one user's library by a year. `lib` is the user's first-snapshot
/// library, already cloned; `owned_scratch` is a reusable buffer.
#[allow(clippy::too_many_arguments)]
fn evolve_library(
    rng: &mut StdRng,
    cfg: &SynthConfig,
    catalog: &CatalogModel,
    table: &AliasTable,
    owned_scratch: &mut std::collections::HashSet<u32>,
    lat: &Latents,
    u: usize,
    lib: &mut Vec<OwnedGame>,
) {
    let arch = lat.archetype[u];
    let engagement = lat.engagement[u];

    // --- new acquisitions -------------------------------------------------
    // Multiplicative growth: a user acquires in proportion to what they
    // already hold (plus a base trickle). Collectors grow ~80%/year.
    let current = lib.len() as f64;
    let base = if chance(rng, 0.35 * engagement.sqrt().min(1.8)) { 1.0 } else { 0.0 };
    // Collectors keep collecting at a high, *reliable* rate (a floor plus
    // noise): the §8 tail-vs-body asymmetry is driven by the very top
    // library, which must not stall on one unlucky draw. Ordinary users
    // get a fully noisy yearly trickle.
    let exp_noise = -(rng.gen::<f64>().max(1e-12)).ln();
    let mean_new = match arch {
        Archetype::Collector => current * (0.45 + 0.37 * exp_noise) + base,
        _ => (current * 0.28 + base) * exp_noise,
    };
    let n_new = (mean_new.round() as usize)
        .min(catalog.game_indices.len().saturating_sub(lib.len()));

    if n_new > 0 {
        owned_scratch.clear();
        for o in lib.iter() {
            // Map app id back to game index space via binary search over
            // products (catalog is sorted by app id).
            if let Ok(pi) = catalog
                .products
                .binary_search_by_key(&o.app_id, |g| g.app_id)
            {
                // game_indices is sorted, so find its position.
                if let Ok(gi) = catalog.game_indices.binary_search(&(pi as u32)) {
                    owned_scratch.insert(gi as u32);
                }
            }
        }
        let mut added = 0;
        let mut attempts = 0;
        while added < n_new && attempts < n_new * 30 {
            attempts += 1;
            let gi = table.sample(rng) as u32;
            if owned_scratch.insert(gi) {
                let app_id =
                    catalog.products[catalog.game_indices[gi as usize] as usize].app_id;
                // Fresh acquisitions start unplayed; a year of backlog
                // pressure means most stay unplayed (§5).
                let minutes = if arch != Archetype::Collector && chance(rng, 0.45) {
                    rng.gen_range(10..3_000)
                } else {
                    0
                };
                lib.push(OwnedGame {
                    app_id,
                    playtime_forever_min: minutes,
                    playtime_2weeks_min: 0,
                });
                added += 1;
            }
        }
        lib.sort_by_key(|o| o.app_id);
    }

    // --- another year of playtime ------------------------------------------
    for o in lib.iter_mut() {
        if o.playtime_forever_min > 0 {
            // Played games accrue proportional growth with noise.
            let factor = 1.0 + 0.4 * rng.gen::<f64>() * engagement.min(3.0);
            o.playtime_forever_min =
                ((f64::from(o.playtime_forever_min) * factor) as u32).max(o.playtime_forever_min);
        }
        o.playtime_2weeks_min = 0;
    }

    // --- a fresh two-week window --------------------------------------------
    let farmer = arch == Archetype::IdleFarmer;
    let played_any = lib.iter().any(|o| o.played());
    let active = farmer
        || (played_any && chance(rng, cfg.active_two_week_rate * engagement.sqrt().min(2.2)));
    if active && !lib.is_empty() {
        let total = if farmer {
            rng.gen_range(
                (steam_model::ownership::MAX_TWO_WEEK_MINUTES * 4 / 5)
                    ..=steam_model::ownership::MAX_TWO_WEEK_MINUTES,
            ) as f64
        } else {
            truncated_power_law_bounded(
                rng,
                30.0,
                f64::from(steam_model::ownership::MAX_TWO_WEEK_MINUTES),
                cfg.two_week_alpha,
                cfg.two_week_scale,
            )
        };
        // Concentrate on the most-played title plus a couple of others.
        let mut order: Vec<usize> = (0..lib.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(lib[i].playtime_forever_min));
        let spread = order.len().min(3);
        for (slot, &i) in order[..spread].iter().enumerate() {
            let share = match slot {
                0 => 0.7,
                1 => 0.2,
                _ => 0.1,
            };
            let recent = (total * share).round() as u32;
            if recent > 0 {
                lib[i].playtime_2weeks_min =
                    recent.min(steam_model::ownership::MAX_TWO_WEEK_MINUTES);
                lib[i].playtime_forever_min = lib[i]
                    .playtime_forever_min
                    .max(lib[i].playtime_2weeks_min);
            }
        }
    }
}

/// Produces the second snapshot from the first: same accounts, friendships
/// and groups; libraries and playtimes grown by ~one year. The base
/// catalog's latents (`game_indices`, `popularity`, parallel to the games
/// inside `first.catalog`) are passed separately because the first
/// snapshot owns only the product list.
pub fn evolve_snapshot(
    cfg: &SynthConfig,
    first: &Snapshot,
    lat: &Latents,
    base_game_indices: &[u32],
    base_popularity: &[f64],
    jobs: usize,
) -> Snapshot {
    // Between the crawls the store itself grew substantially; without this
    // the completionist collectors would already be pinned at the catalog
    // ceiling and the tail could not outgrow the body.
    let catalog = crate::catalog::extend_catalog(
        &mut stage_rng(cfg.seed, "evolve.catalog", 0),
        cfg,
        &first.catalog,
        base_game_indices,
        base_popularity,
        0.85,
    );
    let catalog = &catalog;
    let table = AliasTable::new(&catalog.popularity);

    let chunks = run_chunks(jobs, first.ownerships.len(), USERS_CHUNK, |c, range| {
        let mut rng = stage_rng(cfg.seed, "evolve.users", c as u64);
        let mut owned_scratch: std::collections::HashSet<u32> = std::collections::HashSet::new();
        range
            .map(|u| {
                let mut lib = first.ownerships[u].clone();
                evolve_library(&mut rng, cfg, catalog, &table, &mut owned_scratch, lat, u, &mut lib);
                lib
            })
            .collect::<Vec<_>>()
    });
    let mut ownerships = Vec::with_capacity(first.ownerships.len());
    for mut c in chunks {
        ownerships.append(&mut c);
    }

    let second_catalog: Vec<Game> = catalog.products.clone();
    Snapshot {
        collected_at: steam_model::SimTime::from_ymd(2014, 10, 3),
        scanned_id_space: first.scanned_id_space,
        accounts: first.accounts.clone(),
        friendships: first.friendships.clone(),
        ownerships,
        groups: first.groups.clone(),
        memberships: first.memberships.clone(),
        catalog: second_catalog,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::Generator;

    #[test]
    fn tails_grow_faster_than_percentiles() {
        let cfg = SynthConfig::small(29);
        let gen = Generator::new(cfg.clone());
        let world = gen.generate_world();
        let first = &world.snapshot;
        let second = &world.second_snapshot;

        let sizes = |s: &Snapshot| {
            let mut v: Vec<usize> =
                s.ownerships.iter().filter(|l| !l.is_empty()).map(Vec::len).collect();
            v.sort_unstable();
            v
        };
        let s1 = sizes(first);
        let s2 = sizes(second);
        let max1 = *s1.last().unwrap() as f64;
        let max2 = *s2.last().unwrap() as f64;
        let p80_1 = s1[(s1.len() - 1) * 8 / 10] as f64;
        let p80_2 = s2[(s2.len() - 1) * 8 / 10] as f64;

        // §8: the max grows by a substantially larger factor than the 80th
        // percentile.
        assert!(max2 > max1, "max should grow: {max1} -> {max2}");
        let tail_factor = max2 / max1;
        let body_factor = p80_2 / p80_1.max(1.0);
        assert!(
            tail_factor > body_factor,
            "tail ×{tail_factor:.2} should outgrow body ×{body_factor:.2}"
        );
    }

    #[test]
    fn same_accounts_and_friendships() {
        let world = Generator::new(SynthConfig::small(31)).generate_world();
        assert_eq!(
            world.snapshot.accounts.len(),
            world.second_snapshot.accounts.len()
        );
        assert_eq!(
            world.snapshot.friendships.len(),
            world.second_snapshot.friendships.len()
        );
        assert_eq!(world.snapshot.groups.len(), world.second_snapshot.groups.len());
    }

    #[test]
    fn libraries_never_shrink_and_stay_valid() {
        let world = Generator::new(SynthConfig::small(37)).generate_world();
        for (l1, l2) in world.snapshot.ownerships.iter().zip(&world.second_snapshot.ownerships) {
            assert!(l2.len() >= l1.len(), "library shrank: {} -> {}", l1.len(), l2.len());
        }
        world.second_snapshot.validate().unwrap();
    }

    #[test]
    fn jobs_invariant() {
        let cfg = SynthConfig::small(29);
        let serial = Generator::new(cfg.clone()).generate_world_jobs(1);
        let parallel = Generator::new(cfg).generate_world_jobs(4);
        assert_eq!(serial.second_snapshot.ownerships, parallel.second_snapshot.ownerships);
        assert_eq!(serial.second_snapshot.catalog, parallel.second_snapshot.catalog);
    }
}
