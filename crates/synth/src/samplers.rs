//! Random samplers for the generative population model.
//!
//! Everything is built on `rand`'s uniform source: Box–Muller normals,
//! lognormals, Pareto/power-law tails, discrete Zipf weights, and an alias
//! table for O(1) weighted choice over the game catalog.

use rand::Rng;

/// Standard normal via Box–Muller (one value per call; simple beats caching
/// the second value here).
pub fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-300);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal with the given mean and standard deviation.
pub fn normal_with<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * normal(rng)
}

/// Lognormal: `exp(N(mu, sigma))`.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * normal(rng)).exp()
}

/// Pareto (continuous power law): density ∝ x^{-(alpha+1)} on `x ≥ xmin`
/// (so the *survival* exponent is `alpha`).
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, xmin: f64, alpha: f64) -> f64 {
    debug_assert!(alpha > 0.0 && xmin > 0.0);
    xmin * (1.0 - rng.gen::<f64>()).powf(-1.0 / alpha)
}

/// Power law with exponential cutoff, sampled by rejection from a Pareto
/// envelope: density ∝ x^{-alpha} e^{-x/scale} on `x ≥ xmin`.
pub fn truncated_power_law<R: Rng + ?Sized>(
    rng: &mut R,
    xmin: f64,
    alpha: f64,
    scale: f64,
) -> f64 {
    debug_assert!(alpha > 1.0 && scale > 0.0);
    loop {
        let x = xmin * (1.0 - rng.gen::<f64>()).powf(-1.0 / (alpha - 1.0));
        if rng.gen::<f64>() < (-(x - xmin) / scale).exp() {
            return x;
        }
    }
}

/// Bounded Pareto on `[xmin, xmax]` with survival exponent `alpha - 1`
/// (density ∝ x^{-alpha}), sampled by inverse CDF. Valid for any
/// `alpha > 0`, `alpha != 1` — including the near-1 exponents where
/// rejection from an unbounded envelope would never terminate.
pub fn bounded_pareto<R: Rng + ?Sized>(rng: &mut R, xmin: f64, xmax: f64, alpha: f64) -> f64 {
    debug_assert!(xmax > xmin && xmin > 0.0 && alpha > 0.0);
    let s = 1.0 - alpha;
    let u: f64 = rng.gen();
    if s.abs() < 1e-9 {
        // α = 1: log-uniform.
        (xmin.ln() + u * (xmax.ln() - xmin.ln())).exp()
    } else {
        let a = xmin.powf(s);
        let b = xmax.powf(s);
        (a + u * (b - a)).powf(1.0 / s)
    }
}

/// Power law with exponential cutoff on a bounded support: density
/// ∝ x^{-alpha} e^{-x/scale} on `[xmin, xmax]`, by rejection from a bounded
/// Pareto envelope. Works for α arbitrarily close to (or below) 1, unlike
/// [`truncated_power_law`].
pub fn truncated_power_law_bounded<R: Rng + ?Sized>(
    rng: &mut R,
    xmin: f64,
    xmax: f64,
    alpha: f64,
    scale: f64,
) -> f64 {
    loop {
        let x = bounded_pareto(rng, xmin, xmax, alpha);
        if rng.gen::<f64>() < (-(x - xmin) / scale).exp() {
            return x;
        }
    }
}

/// Logistic sigmoid.
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Bernoulli draw.
pub fn chance<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    rng.gen::<f64>() < p
}

/// Zipf weights `1/(i+1)^s` for `n` ranks (unnormalized).
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect()
}

/// Walker's alias method: O(n) build, O(1) sampling from a fixed discrete
/// distribution. Used for popularity-weighted game and group choice.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds from non-negative weights (at least one must be positive).
    pub fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        assert!(n > 0, "alias table needs at least one weight");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && weights.iter().all(|w| *w >= 0.0 && w.is_finite()),
            "weights must be non-negative, finite, with a positive sum"
        );
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, p) in prob.iter().enumerate() {
            if *p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers pin to probability 1.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    pub fn len(&self) -> usize {
        self.prob.len()
    }

    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

/// Picks an index from cumulative shares summing to 1 (for small categorical
/// tables like Table 1 country shares).
pub fn categorical<R: Rng + ?Sized>(rng: &mut R, shares: &[f64]) -> usize {
    let x: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, s) in shares.iter().enumerate() {
        acc += s;
        if x < acc {
            return i;
        }
    }
    shares.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.02, "var = {var}");
    }

    #[test]
    fn lognormal_median() {
        let mut r = rng();
        let mut xs: Vec<f64> = (0..100_001).map(|_| lognormal(&mut r, 2.0, 0.7)).collect();
        xs.sort_by(f64::total_cmp);
        let median = xs[50_000];
        assert!((median.ln() - 2.0).abs() < 0.02, "median = {median}");
    }

    #[test]
    fn pareto_respects_xmin_and_tail() {
        let mut r = rng();
        let xs: Vec<f64> = (0..100_000).map(|_| pareto(&mut r, 5.0, 2.0)).collect();
        assert!(xs.iter().all(|&x| x >= 5.0));
        // P(X > 10) = (10/5)^-2 = 0.25
        let frac = xs.iter().filter(|&&x| x > 10.0).count() as f64 / xs.len() as f64;
        assert!((frac - 0.25).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn tpl_has_bounded_tail() {
        let mut r = rng();
        let xs: Vec<f64> =
            (0..50_000).map(|_| truncated_power_law(&mut r, 1.0, 1.5, 50.0)).collect();
        assert!(xs.iter().all(|&x| x >= 1.0));
        // With scale 50, essentially nothing lands beyond 50·20.
        assert!(xs.iter().filter(|&&x| x > 1000.0).count() < 5);
    }

    #[test]
    fn alias_table_matches_weights() {
        let mut r = rng();
        let weights = [1.0, 0.0, 3.0, 6.0];
        let table = AliasTable::new(&weights);
        let mut counts = [0u32; 4];
        let n = 200_000;
        for _ in 0..n {
            counts[table.sample(&mut r)] += 1;
        }
        assert_eq!(counts[1], 0);
        let f0 = f64::from(counts[0]) / n as f64;
        let f2 = f64::from(counts[2]) / n as f64;
        let f3 = f64::from(counts[3]) / n as f64;
        assert!((f0 - 0.1).abs() < 0.01, "{f0}");
        assert!((f2 - 0.3).abs() < 0.01, "{f2}");
        assert!((f3 - 0.6).abs() < 0.01, "{f3}");
    }

    #[test]
    fn alias_table_single_weight() {
        let mut r = rng();
        let table = AliasTable::new(&[7.0]);
        assert_eq!(table.sample(&mut r), 0);
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn alias_rejects_zero_weights() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn zipf_weights_decay() {
        let w = zipf_weights(5, 1.0);
        assert_eq!(w[0], 1.0);
        assert!((w[4] - 0.2).abs() < 1e-12);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
    }

    #[test]
    fn categorical_hits_all_buckets() {
        let mut r = rng();
        let shares = [0.5, 0.3, 0.2];
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[categorical(&mut r, &shares)] += 1;
        }
        assert!((f64::from(counts[0]) / 30_000.0 - 0.5).abs() < 0.02);
        assert!((f64::from(counts[2]) / 30_000.0 - 0.2).abs() < 0.02);
    }

    #[test]
    fn chance_extremes() {
        let mut r = rng();
        assert!(!chance(&mut r, 0.0));
        assert!(chance(&mut r, 1.0));
    }
}
