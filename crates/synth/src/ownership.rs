//! Library and playtime generation.
//!
//! Calibration targets:
//! * game ownership long-tailed: 4 / 10 / 21 / 39 / 115 at the standard
//!   percentiles among owners; ~90% of owners below 20 games (§4.2);
//! * played-vs-owned gap: 80th percentiles 10 owned vs 7 played (Figure 4),
//!   with genre-specific unplayed shares (Action ≈ 41%, RPG ≈ 24%, Figure 5);
//! * collectors: libraries of 500–2,148 games, almost none played, producing
//!   the ownership uptick at 1,268–1,290 games and the market-value bump at
//!   $14.7k–15.3k (Figures 4 and 8);
//! * total playtime lognormal-ish (median 34 h, 99th ≈ 2,660 h among
//!   players); two-week playtime truncated-power-law with ~80% zeros and a
//!   hard 336 h ceiling (Figures 6–7);
//! * multiplayer games draw 57.7% of total and 67.7% of two-week playtime
//!   despite being 48.7% of the catalog (Figure 10).
//!
//! Users are independent given the shared popularity table, so the whole
//! stage fans out over fixed user chunks of the `ownership` seed stream;
//! each chunk carries its own dedupe scratch buffer.

use rand::rngs::StdRng;
use rand::Rng;
use steam_model::{Genre, OwnedGame, MAX_TWO_WEEK_MINUTES};

use crate::accounts::{Archetype, Population};
use crate::catalog::CatalogModel;
use crate::config::SynthConfig;
use crate::par::{run_chunks, USERS_CHUNK};
use crate::samplers::{chance, lognormal, pareto, sigmoid, truncated_power_law_bounded, AliasTable};
use crate::seed::stage_rng;

/// Per-copy probability that an owned game of this genre is never launched
/// (primary-genre approximation of Figure 5's shares).
fn unplayed_prob(genres: steam_model::GenreSet) -> f64 {
    if genres.contains(Genre::Action) {
        0.40
    } else if genres.contains(Genre::Indie) {
        0.32
    } else if genres.contains(Genre::Strategy) {
        0.29
    } else if genres.contains(Genre::Rpg) {
        0.24
    } else {
        0.30
    }
}

/// Draws a library size for a typical owner, using the user's stored
/// library propensity (which also feeds the friendship matching key).
fn library_size(
    rng: &mut StdRng,
    cfg: &SynthConfig,
    engagement: f64,
    z_library: f64,
    max: usize,
) -> usize {
    let coupling = cfg.library_engagement_coupling * engagement.ln();
    // The organic Pareto tail is capped well below collector territory —
    // the paper's manual validation found the extreme libraries belong to
    // collectors who play almost nothing, not to whales who play a lot.
    let raw = if chance(rng, cfg.library_tail_rate) {
        pareto(rng, cfg.library_tail_xmin, cfg.library_tail_alpha).min(800.0)
    } else {
        (cfg.library_mu + coupling + cfg.library_sigma * z_library).exp()
    };
    (raw.round() as usize).clamp(1, max)
}

/// Draws a collector's library size: the bulk in the hundreds, a cluster at
/// 1,268–1,290 (the invite-only collector-group thresholds the paper
/// hypothesizes), and a few all-but-complete collections.
fn collector_size(rng: &mut StdRng, n_games: usize) -> usize {
    let max = ((n_games as f64) * 0.903) as usize;
    let x: f64 = rng.gen();
    let size = if x < 0.50 {
        pareto(rng, 500.0, 1.8) as usize
    } else if x < 0.85 {
        rng.gen_range(1_268..=1_290)
    } else {
        rng.gen_range(max.saturating_sub(300)..=max)
    };
    size.clamp(1, max.max(1))
}

/// Generates one user's library. `picked` is a reusable all-false scratch
/// buffer of `n_games` flags; it is restored to all-false before returning.
#[allow(clippy::too_many_arguments)]
fn generate_library(
    rng: &mut StdRng,
    cfg: &SynthConfig,
    pop: &Population,
    catalog: &CatalogModel,
    table: &AliasTable,
    picked: &mut [bool],
    owner_bias: f64,
    u: usize,
) -> Vec<OwnedGame> {
    let n_games = catalog.game_indices.len();
    let lat = &pop.latents;
    let arch = lat.archetype[u];
    // The gate runs on the same latent that sets library size, so the
    // value-zero users sit at the bottom of the value-propensity scale
    // instead of being scattered across it.
    let lib_latent = cfg.library_engagement_coupling * lat.engagement[u].ln()
        + cfg.library_sigma * lat.z_library[u];
    let p_owner = sigmoid(owner_bias + 1.2 * lib_latent);
    let is_owner = arch != Archetype::Typical || chance(rng, p_owner);
    if !is_owner {
        return Vec::new();
    }
    let engagement = lat.engagement[u];
    let size = match arch {
        Archetype::Collector => collector_size(rng, n_games),
        _ => library_size(rng, cfg, engagement, lat.z_library[u], (n_games * 9) / 10),
    };

    // --- pick games ------------------------------------------------------
    let mut games: Vec<u32> = Vec::with_capacity(size);
    if size * 3 >= n_games {
        // Huge libraries: sample by inclusion instead of rejection.
        let p = size as f64 / n_games as f64;
        for gi in 0..n_games {
            if chance(rng, p) {
                games.push(gi as u32);
            }
        }
    } else {
        let mut attempts = 0usize;
        while games.len() < size && attempts < size * 20 {
            attempts += 1;
            let gi = table.sample(rng);
            if !picked[gi] {
                picked[gi] = true;
                games.push(gi as u32);
            }
        }
        for &gi in &games {
            picked[gi as usize] = false;
        }
    }
    games.sort_unstable();

    // --- played / unplayed -------------------------------------------------
    // A per-user backlog factor: some users play almost everything they
    // own, some almost nothing. A slice of collectors are pure
    // collectors who never launch anything — the paper manually verified
    // 29 accounts with ≥500 games and zero playtime.
    let backlog = lognormal(rng, 0.0, 0.45);
    let pure_collector = arch == Archetype::Collector && chance(rng, 0.40);
    let played: Vec<bool> = games
        .iter()
        .map(|&gi| {
            let g = &catalog.products[catalog.game_indices[gi as usize] as usize];
            let mut p_unplayed = unplayed_prob(g.genres) * backlog;
            if arch == Archetype::Collector {
                p_unplayed = if pure_collector { 1.0 } else { 0.97 };
            }
            !chance(rng, p_unplayed.min(1.0))
        })
        .collect();

    // --- total playtime -----------------------------------------------------
    let n_played = played.iter().filter(|&&p| p).count();
    let mut lib: Vec<OwnedGame> = Vec::with_capacity(games.len());
    let mut weights: Vec<f64> = Vec::with_capacity(games.len());
    let mut total_minutes = 0f64;
    if n_played > 0 {
        let coupling = cfg.playtime_engagement_coupling * engagement.ln();
        // The stored playtime propensity replaces the lognormal's inner
        // normal draw, tying total playtime to the matching key.
        let z = lat.z_playtime[u];
        total_minutes = if chance(rng, cfg.playtime_heavy_rate) {
            (cfg.playtime_heavy_mu + coupling + cfg.playtime_heavy_sigma * z).exp()
        } else {
            (cfg.playtime_casual_mu + coupling + cfg.playtime_casual_sigma * z).exp()
        };
        if arch == Archetype::Collector {
            total_minutes = total_minutes.min(3_000.0);
        }
        // Cap at 16 h/day since account creation — nobody can have played
        // longer than their account has existed.
        let age_days = (steam_model::SimTime::from_ymd(2013, 11, 5)
            .days_since(pop.accounts[u].created_at))
        .max(30) as f64;
        total_minutes = total_minutes.min(age_days * 16.0 * 60.0);
    }

    // Allocation weights: popularity × multiplayer boost × noise.
    let mut weight_sum = 0.0;
    for (&gi, &p) in games.iter().zip(&played) {
        let w = if p {
            let g = &catalog.products[catalog.game_indices[gi as usize] as usize];
            let mp = if g.multiplayer { cfg.multiplayer_boost } else { 1.0 };
            let noise = -(rng.gen::<f64>().max(1e-12)).ln(); // Exp(1)
            catalog.popularity[gi as usize] * mp * noise
        } else {
            0.0
        };
        weights.push(w);
        weight_sum += w;
    }

    for ((&gi, &p), &w) in games.iter().zip(&played).zip(&weights) {
        let minutes = if p && weight_sum > 0.0 {
            ((total_minutes * w / weight_sum).round() as u32).max(1)
        } else {
            0
        };
        lib.push(OwnedGame {
            app_id: catalog.products[catalog.game_indices[gi as usize] as usize].app_id,
            playtime_forever_min: minutes,
            playtime_2weeks_min: 0,
        });
    }

    // --- two-week window ------------------------------------------------------
    let farmer = arch == Archetype::IdleFarmer;
    let active = farmer
        || (n_played > 0
            && chance(rng, cfg.active_two_week_rate * engagement.sqrt().min(2.2)));
    if active {
        let two_week_total = if farmer {
            rng.gen_range((MAX_TWO_WEEK_MINUTES * 4 / 5)..=MAX_TWO_WEEK_MINUTES) as f64
        } else {
            truncated_power_law_bounded(
                rng,
                30.0,
                f64::from(MAX_TWO_WEEK_MINUTES),
                cfg.two_week_alpha,
                cfg.two_week_scale,
            )
        };
        // Spread over the played games, biased to the most-played ones;
        // each game's recent playtime also adds to its lifetime total.
        if weight_sum > 0.0 {
            // Recent play tilts further toward multiplayer titles
            // (Figure 10: 67.7% of two-week vs 57.7% of total playtime).
            let weights2: Vec<f64> = games
                .iter()
                .zip(&weights)
                .map(|(&gi, &w)| {
                    let g = &catalog.products[catalog.game_indices[gi as usize] as usize];
                    if g.multiplayer {
                        w * 1.9
                    } else {
                        w
                    }
                })
                .collect();
            let weight2_sum: f64 = weights2.iter().sum();
            for (entry, &w) in lib.iter_mut().zip(&weights2) {
                let recent = (two_week_total * w / weight2_sum).round() as u32;
                let recent = recent.min(MAX_TWO_WEEK_MINUTES);
                if recent > 0 {
                    entry.playtime_2weeks_min = recent;
                    entry.playtime_forever_min =
                        entry.playtime_forever_min.max(recent).saturating_add(recent / 4);
                }
            }
        } else if farmer && !lib.is_empty() {
            // A farmer with zero played games idles their first title.
            let recent = two_week_total.round() as u32;
            lib[0].playtime_2weeks_min = recent;
            lib[0].playtime_forever_min = lib[0].playtime_forever_min.max(recent);
        }
    }
    lib
}

/// Generates every user's library with playtimes. Returns per-user
/// `Vec<OwnedGame>` sorted by app id, parallel to `pop.accounts`.
pub fn generate_ownership(
    cfg: &SynthConfig,
    pop: &Population,
    catalog: &CatalogModel,
    jobs: usize,
) -> Vec<Vec<OwnedGame>> {
    let n_games = catalog.game_indices.len();
    let table = AliasTable::new(&catalog.popularity);

    // Owning games correlates with engagement: the paper's strong homophily
    // in market value (§7, ρ=0.77) requires that who owns anything at all is
    // itself socially structured, not a uniform coin flip.
    let owner_bias = (cfg.owner_rate / (1.0 - cfg.owner_rate)).ln();
    let chunks = run_chunks(jobs, pop.accounts.len(), USERS_CHUNK, |c, range| {
        let mut rng = stage_rng(cfg.seed, "ownership", c as u64);
        let mut picked = vec![false; n_games]; // per-chunk dedupe scratch
        range
            .map(|u| {
                generate_library(&mut rng, cfg, pop, catalog, &table, &mut picked, owner_bias, u)
            })
            .collect::<Vec<_>>()
    });
    let mut out = Vec::with_capacity(pop.accounts.len());
    for mut c in chunks {
        out.append(&mut c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accounts::generate_population;
    use crate::catalog::generate_catalog;

    struct World {
        pop: Population,
        libs: Vec<Vec<OwnedGame>>,
    }

    fn build() -> World {
        let cfg = SynthConfig::small(17);
        let catalog = generate_catalog(&cfg, 1);
        let pop = generate_population(&cfg, 1);
        let libs = generate_ownership(&cfg, &pop, &catalog, 1);
        World { pop, libs }
    }

    #[test]
    fn structure_is_valid() {
        let w = build();
        assert_eq!(w.libs.len(), w.pop.accounts.len());
        for lib in &w.libs {
            for pair in lib.windows(2) {
                assert!(pair[0].app_id < pair[1].app_id, "library must be sorted+deduped");
            }
            for o in lib {
                assert!(o.playtime_2weeks_min <= MAX_TWO_WEEK_MINUTES);
                assert!(o.playtime_2weeks_min <= o.playtime_forever_min);
            }
        }
    }

    #[test]
    fn owner_rate_near_config() {
        let w = build();
        let owners = w.libs.iter().filter(|l| !l.is_empty()).count() as f64;
        let rate = owners / w.libs.len() as f64;
        let cfg = SynthConfig::small(17);
        assert!((rate - cfg.owner_rate).abs() < 0.05, "owner rate = {rate}");
    }

    #[test]
    fn library_percentiles_near_paper() {
        let w = build();
        let mut sizes: Vec<usize> =
            w.libs.iter().filter(|l| !l.is_empty()).map(Vec::len).collect();
        sizes.sort_unstable();
        let p = |q: f64| sizes[((sizes.len() - 1) as f64 * q) as usize];
        // Paper: 4 / 10 / 21 / 39 / 115.
        let (p50, p80, p90, p99) = (p(0.5), p(0.8), p(0.9), p(0.99));
        assert!((2..=7).contains(&p50), "p50 = {p50}");
        assert!((7..=16).contains(&p80), "p80 = {p80}");
        assert!((14..=32).contains(&p90), "p90 = {p90}");
        assert!((60..=220).contains(&p99), "p99 = {p99}");
        // §4.2: ~90% of owners own fewer than 20 games.
        let under20 = sizes.iter().filter(|&&s| s < 20).count() as f64 / sizes.len() as f64;
        assert!((0.80..0.96).contains(&under20), "under-20 share = {under20}");
    }

    #[test]
    fn played_gap_exists() {
        let w = build();
        let mut owned = 0u64;
        let mut unplayed = 0u64;
        for lib in &w.libs {
            owned += lib.len() as u64;
            unplayed += lib.iter().filter(|o| !o.played()).count() as u64;
        }
        let share = unplayed as f64 / owned as f64;
        // Figure 5: genre unplayed shares range 24–41%.
        assert!((0.18..0.45).contains(&share), "unplayed share = {share}");
    }

    #[test]
    fn two_week_mostly_zero() {
        let w = build();
        let owners: Vec<&Vec<OwnedGame>> =
            w.libs.iter().filter(|l| !l.is_empty()).collect();
        let active = owners
            .iter()
            .filter(|l| l.iter().any(|o| o.playtime_2weeks_min > 0))
            .count() as f64;
        let rate = active / owners.len() as f64;
        // Figure 6: >80% of gamers idle over any two-week window.
        assert!((0.08..0.30).contains(&rate), "active rate = {rate}");
    }


    #[test]
    fn multiplayer_overrepresented_in_playtime() {
        // A single small world has roughly +/-0.08 draw spread on this
        // share, so judge the calibration on a few-seed average.
        let mut mp_total = 0u64;
        let mut total = 0u64;
        for seed in [17, 18, 19] {
            let cfg = SynthConfig::small(seed);
            let catalog = generate_catalog(&cfg, 1);
            let pop = generate_population(&cfg, 1);
            let libs = generate_ownership(&cfg, &pop, &catalog, 1);
            let index = {
                let mut m = std::collections::HashMap::new();
                for g in &catalog.products {
                    m.insert(g.app_id, g.multiplayer);
                }
                m
            };
            for lib in &libs {
                for o in lib {
                    total += u64::from(o.playtime_forever_min);
                    if index[&o.app_id] {
                        mp_total += u64::from(o.playtime_forever_min);
                    }
                }
            }
        }
        let share = mp_total as f64 / total as f64;
        // Figure 10: 57.7% of total playtime on multiplayer games (48.7% of
        // the catalog).
        assert!((0.50..0.75).contains(&share), "multiplayer share = {share}");
    }

    #[test]
    fn collectors_have_huge_unplayed_libraries() {
        // Collectors are ~1.5e-4 of users, so scan a few seeds to see some.
        let mut found = 0;
        for seed in [17, 18, 19, 20] {
            let cfg = SynthConfig::small(seed);
            let catalog = generate_catalog(&cfg, 1);
            let pop = generate_population(&cfg, 1);
            let libs = generate_ownership(&cfg, &pop, &catalog, 1);
            for (u, lib) in libs.iter().enumerate() {
                if pop.latents.archetype[u] == Archetype::Collector {
                    found += 1;
                    assert!(lib.len() >= 100, "collector library = {}", lib.len());
                    let played = lib.iter().filter(|o| o.played()).count() as f64;
                    assert!(
                        played / lib.len() as f64 <= 0.2,
                        "collector played {played} of {}",
                        lib.len()
                    );
                }
            }
        }
        // 4 seeds × 30k users × 1.5e-4 ≈ 18 expected.
        assert!(found >= 1, "no collectors in sample");
    }

    #[test]
    fn total_playtime_distribution_reasonable() {
        let w = build();
        let mut hours: Vec<f64> = w
            .libs
            .iter()
            .map(|l| l.iter().map(|o| f64::from(o.playtime_forever_min)).sum::<f64>() / 60.0)
            .filter(|&h| h > 0.0)
            .collect();
        hours.sort_by(f64::total_cmp);
        let p = |q: f64| hours[((hours.len() - 1) as f64 * q) as usize];
        // Paper: 34 h median, 336 h at p80, 2,660 h at p99 (among players).
        let (p50, p80, p99) = (p(0.5), p(0.8), p(0.99));
        assert!((10.0..90.0).contains(&p50), "p50 = {p50}");
        assert!((120.0..700.0).contains(&p80), "p80 = {p80}");
        assert!((1_200.0..6_000.0).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn deterministic() {
        let cfg = SynthConfig::small(19);
        let run = || {
            let catalog = generate_catalog(&cfg, 1);
            let pop = generate_population(&cfg, 1);
            generate_ownership(&cfg, &pop, &catalog, 1)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn jobs_invariant() {
        let cfg = SynthConfig::small(19);
        let catalog = generate_catalog(&cfg, 1);
        let pop = generate_population(&cfg, 1);
        let serial = generate_ownership(&cfg, &pop, &catalog, 1);
        let parallel = generate_ownership(&cfg, &pop, &catalog, 4);
        assert_eq!(serial, parallel);
    }
}
