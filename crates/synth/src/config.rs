//! Generator configuration and calibration constants.
//!
//! Every knob defaults to a value calibrated so that the generated
//! population's *shape statistics* (percentile ladders, Pareto shares, genre
//! shares, correlation magnitudes, distribution classes) land near the
//! paper's published numbers. Absolute totals scale linearly with
//! `n_users`; EXPERIMENTS.md records paper-vs-measured for each experiment.

/// Full configuration of the synthetic Steam population.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// RNG seed; the generator is fully deterministic given the config.
    pub seed: u64,
    /// Number of valid accounts to generate.
    pub n_users: usize,
    /// Catalog size in products (the paper collected 6,156).
    pub n_products: usize,
    /// Number of community groups (the paper found 3.0 M for 108.7 M users;
    /// we keep the same ratio by default).
    pub n_groups: usize,

    // --- ID space (§3.1 density pattern) ---
    /// Valid-account density in the first `density_break` of the ID range.
    pub early_density: f64,
    /// Valid-account density after the break.
    pub late_density: f64,
    /// Fraction of the ID range with low density (the paper: ~21.5%).
    pub density_break: f64,

    // --- Profiles ---
    /// Fraction of users who self-report a country (paper: 10.7%).
    pub country_report_rate: f64,
    /// Fraction of users who self-report a city (paper: 4.0%).
    pub city_report_rate: f64,
    /// Cities per country for the locality analysis.
    pub cities_per_country: u16,
    /// Fraction of accounts with a linked Facebook account (friend cap 300).
    pub facebook_rate: f64,
    /// Fraction of profiles set private (no behavioral data harvested).
    pub private_rate: f64,

    // --- Friendships ---
    /// Fraction of users with at least one friend.
    pub social_rate: f64,
    /// Lognormal (mu, sigma) of target friend counts among social users.
    pub degree_mu: f64,
    pub degree_sigma: f64,
    /// Fraction of social users whose target degree is drawn from the
    /// Pareto tail instead (drives the 99th percentile and the cap pile-up).
    pub degree_tail_rate: f64,
    /// Pareto (xmin, alpha) of the degree tail.
    pub degree_tail_xmin: f64,
    pub degree_tail_alpha: f64,
    /// Probability a friendship partner is drawn from the same country
    /// (among country-reporting users; calibrates §4.1's 30.34%
    /// international share).
    pub same_country_bias: f64,
    /// Probability a same-country friendship partner is same-city.
    pub same_city_bias: f64,
    /// Width (in rank space, as a fraction of the population) of the
    /// engagement-sorted attachment window; smaller = stronger homophily.
    pub homophily_window: f64,
    /// Per-stub key noise in the friendship matcher; smaller = friends more
    /// similar along every behavioral dimension (§7's homophily ladder).
    pub matching_noise: f64,

    // --- Ownership ---
    /// Fraction of users who own at least one game.
    pub owner_rate: f64,
    /// Lognormal (mu, sigma) of library sizes among owners.
    pub library_mu: f64,
    pub library_sigma: f64,
    /// Fraction of owners whose library size is Pareto-tailed.
    pub library_tail_rate: f64,
    pub library_tail_xmin: f64,
    pub library_tail_alpha: f64,
    /// Collector archetype rate (huge libraries, mostly unplayed).
    pub collector_rate: f64,
    /// How much engagement shifts library size (correlation knob).
    pub library_engagement_coupling: f64,

    // --- Playtime ---
    /// Mixture weight of the "invested" playtime component among players.
    pub playtime_heavy_rate: f64,
    /// Lognormal (mu, sigma) for casual total playtime (minutes).
    pub playtime_casual_mu: f64,
    pub playtime_casual_sigma: f64,
    /// Lognormal (mu, sigma) for invested total playtime (minutes).
    pub playtime_heavy_mu: f64,
    pub playtime_heavy_sigma: f64,
    /// Fraction of owners active in the two-week window (paper: <20%).
    pub active_two_week_rate: f64,
    /// Truncated-power-law (alpha, scale minutes) of two-week playtime.
    pub two_week_alpha: f64,
    pub two_week_scale: f64,
    /// Idle-farmer archetype rate (two-week playtime near the 336 h cap).
    pub idle_farmer_rate: f64,
    /// Extra playtime multiplier for multiplayer games (drives Figure 10).
    pub multiplayer_boost: f64,
    /// How much engagement shifts playtime (correlation knob).
    pub playtime_engagement_coupling: f64,

    // --- Groups ---
    /// Fraction of users belonging to at least one group.
    pub group_member_rate: f64,
    /// Lognormal (mu, sigma) of membership counts among members.
    pub membership_mu: f64,
    pub membership_sigma: f64,
    /// Probability a membership is chosen via an owned game's focal groups
    /// (vs. global popularity) — drives Figure 3's game-focused groups.
    pub game_directed_membership: f64,

    // --- Catalog ---
    /// Fraction of products that are games (vs demos/DLC/trailers/tools).
    pub game_fraction: f64,
    /// Fraction of games with a multiplayer component (paper: 48.7%).
    pub multiplayer_fraction: f64,
    /// Zipf exponent of game popularity.
    pub popularity_zipf: f64,
    /// Fraction of games offering zero achievements.
    pub no_achievements_rate: f64,
    /// Coupling between achievement count (≤90) and game popularity
    /// (drives §9's R≈0.53 on the 1–90 band).
    pub achievement_popularity_coupling: f64,
}

impl SynthConfig {
    /// A small population for unit/integration tests (~30k users).
    pub fn small(seed: u64) -> Self {
        SynthConfig { n_users: 30_000, n_groups: 900, ..SynthConfig::base(seed) }
    }

    /// The default experiment scale (~300k users) — large enough for stable
    /// tail classifications, small enough to generate in seconds.
    pub fn medium(seed: u64) -> Self {
        SynthConfig { n_users: 300_000, n_groups: 9_000, ..SynthConfig::base(seed) }
    }

    /// A large run for the headline experiments (~2M users).
    pub fn large(seed: u64) -> Self {
        SynthConfig { n_users: 2_000_000, n_groups: 55_000, ..SynthConfig::base(seed) }
    }

    /// Calibrated defaults (see module docs); population sizes are set by
    /// the named presets.
    pub fn base(seed: u64) -> Self {
        SynthConfig {
            seed,
            n_users: 100_000,
            n_products: 6_156,
            n_groups: 3_000,

            early_density: 0.45,
            late_density: 0.93,
            density_break: 0.215,

            country_report_rate: 0.107,
            city_report_rate: 0.040,
            cities_per_country: 40,
            facebook_rate: 0.08,
            private_rate: 0.06,

            // Table 3's friends row (median 4) is only consistent with the
            // network's mean degree (2·196.4M/108.7M ≈ 3.6) if only about a
            // third of accounts have any friends at all; the percentile
            // ladder is then matched among those social users.
            social_rate: 0.35,
            degree_mu: 1.13,
            degree_sigma: 0.85,
            degree_tail_rate: 0.02,
            degree_tail_xmin: 40.0,
            degree_tail_alpha: 1.60,
            same_country_bias: 0.70,
            same_city_bias: 0.30,
            homophily_window: 0.004,
            matching_noise: 0.12,

            owner_rate: 0.55,
            library_mu: 0.95,
            library_sigma: 0.62,
            library_tail_rate: 0.03,
            library_tail_xmin: 20.0,
            library_tail_alpha: 1.22,
            collector_rate: 1.5e-4,
            library_engagement_coupling: 1.00,

            playtime_heavy_rate: 0.40,
            playtime_casual_mu: 6.55,  // exp(6.55) ≈ 700 min ≈ 11.7 h
            playtime_casual_sigma: 1.8,
            playtime_heavy_mu: 9.25,   // exp(9.4) ≈ 12,100 min ≈ 202 h
            playtime_heavy_sigma: 1.15,
            active_two_week_rate: 0.15,
            two_week_alpha: 1.30,
            two_week_scale: 50_000.0, // minutes; the hard 336 h ceiling is the
                                      // dominant truncation, the soft cutoff
                                      // only shapes the last decade
            idle_farmer_rate: 1e-4,
            multiplayer_boost: 1.1,
            playtime_engagement_coupling: 0.85,

            group_member_rate: 0.25,
            membership_mu: 0.69,
            membership_sigma: 1.15,
            game_directed_membership: 0.70,

            game_fraction: 0.39,
            multiplayer_fraction: 0.487,
            popularity_zipf: 1.02,
            no_achievements_rate: 0.25,
            achievement_popularity_coupling: 1.4,
        }
    }

    /// Sanity checks on rates and shape parameters.
    pub fn validate(&self) -> Result<(), String> {
        let rates = [
            ("early_density", self.early_density),
            ("late_density", self.late_density),
            ("density_break", self.density_break),
            ("country_report_rate", self.country_report_rate),
            ("city_report_rate", self.city_report_rate),
            ("facebook_rate", self.facebook_rate),
            ("private_rate", self.private_rate),
            ("social_rate", self.social_rate),
            ("degree_tail_rate", self.degree_tail_rate),
            ("same_country_bias", self.same_country_bias),
            ("same_city_bias", self.same_city_bias),
            ("owner_rate", self.owner_rate),
            ("library_tail_rate", self.library_tail_rate),
            ("collector_rate", self.collector_rate),
            ("playtime_heavy_rate", self.playtime_heavy_rate),
            ("active_two_week_rate", self.active_two_week_rate),
            ("idle_farmer_rate", self.idle_farmer_rate),
            ("group_member_rate", self.group_member_rate),
            ("game_directed_membership", self.game_directed_membership),
            ("game_fraction", self.game_fraction),
            ("multiplayer_fraction", self.multiplayer_fraction),
            ("no_achievements_rate", self.no_achievements_rate),
        ];
        for (name, v) in rates {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} = {v} is not a probability"));
            }
        }
        if self.n_users == 0 || self.n_products == 0 {
            return Err("population and catalog must be non-empty".into());
        }
        if self.n_groups == 0 {
            return Err("need at least one group".into());
        }
        if self.degree_tail_alpha <= 1.0 || self.library_tail_alpha <= 1.0 {
            return Err("Pareto tails need alpha > 1".into());
        }
        if self.two_week_alpha <= 0.0 {
            return Err("two-week playtime needs alpha > 0".into());
        }
        if self.homophily_window <= 0.0 || self.homophily_window > 1.0 {
            return Err("homophily_window must be in (0, 1]".into());
        }
        if self.matching_noise <= 0.0 {
            return Err("matching_noise must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        SynthConfig::small(1).validate().unwrap();
        SynthConfig::medium(1).validate().unwrap();
        SynthConfig::large(1).validate().unwrap();
    }

    #[test]
    fn bad_rates_rejected() {
        let mut c = SynthConfig::small(1);
        c.owner_rate = 1.5;
        assert!(c.validate().is_err());
        let mut c = SynthConfig::small(1);
        c.degree_tail_alpha = 0.9;
        assert!(c.validate().is_err());
        let mut c = SynthConfig::small(1);
        c.n_users = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn presets_scale_population() {
        assert!(SynthConfig::small(1).n_users < SynthConfig::medium(1).n_users);
        assert!(SynthConfig::medium(1).n_users < SynthConfig::large(1).n_users);
    }
}
