//! Account generation: ID-space layout, creation-time growth curve,
//! self-reported locations, and the latent per-user state that couples the
//! behavioral dimensions.

use rand::Rng;
use steam_model::{Account, CountryCode, SimTime, SteamId, Visibility};

use crate::config::SynthConfig;
use crate::par::{run_chunks, USERS_CHUNK};
use crate::samplers::{categorical, chance, normal};
use crate::seed::stage_rng;

/// Behavioral archetypes (§5 and §6.1's extreme behaviors).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Archetype {
    /// Ordinary player: everything drawn from the calibrated distributions.
    Typical,
    /// Acquires huge libraries and plays almost none of it (§5).
    Collector,
    /// Leaves games running; two-week playtime near the 336-hour cap (§6.1).
    IdleFarmer,
}

/// Latent per-user state used by downstream stages. Kept separate from the
/// accounts so the snapshot can take ownership of the account vector while
/// the world keeps the latents — no second copy of the population.
#[derive(Clone, Debug)]
pub struct Latents {
    /// Latent engagement per user; log-scale factor shared by friendship,
    /// library, and playtime couplings (this is what makes friends/games/
    /// playtime mutually correlated, §7).
    pub engagement: Vec<f64>,
    pub archetype: Vec<Archetype>,
    /// True country of every user — the profile only *reports* it for
    /// `country_report_rate` of them, but friendship locality (§4.1) acts on
    /// where people actually live.
    pub true_country: Vec<CountryCode>,
    /// True city (index within the country) of every user.
    pub true_city: Vec<u16>,
    /// Idiosyncratic (standard-normal) propensity latents. These are drawn
    /// once so that friendship matching can happen on the *composite* of a
    /// user's behavioral dimensions — §7's homophily is strong in every
    /// dimension even though the dimensions are only weakly correlated with
    /// each other, which requires friends to be matched on all of them, not
    /// on a single scalar.
    pub z_degree: Vec<f64>,
    pub z_library: Vec<f64>,
    pub z_playtime: Vec<f64>,
}

/// The population plus latent state used by downstream stages.
#[derive(Clone, Debug)]
pub struct Population {
    pub accounts: Vec<Account>,
    /// Size of the scanned ID space (valid + invalid IDs).
    pub scanned_id_space: u64,
    pub latents: Latents,
}

/// Year the Steam service launched / the first accounts appear.
pub const FIRST_YEAR: i32 = 2003;
/// Nominal end of the first crawl (the paper: March 2013 census).
pub const SNAPSHOT_YEAR: i32 = 2013;

/// Exponential user-growth rate per year (Becker et al. observed
/// exponential growth; this reproduces Figure 1's convex user curve).
const GROWTH_RATE: f64 = 0.38;

/// Per-year share of account creations for `FIRST_YEAR..=SNAPSHOT_YEAR`.
fn year_shares() -> Vec<f64> {
    let n = (SNAPSHOT_YEAR - FIRST_YEAR + 1) as usize;
    let raw: Vec<f64> = (0..n).map(|i| (GROWTH_RATE * i as f64).exp()).collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|x| x / total).collect()
}

/// Lays out `n_users` valid IDs across a sparse ID space with the density
/// profile of §3.1 (low density early, high density late).
fn id_layout(cfg: &SynthConfig) -> (Vec<u64>, u64) {
    let n = cfg.n_users as f64;
    let overall = cfg.early_density * cfg.density_break
        + cfg.late_density * (1.0 - cfg.density_break);
    let scanned = (n / overall).ceil() as u64;
    let break_at = (scanned as f64 * cfg.density_break) as u64;

    let mut ids = Vec::with_capacity(cfg.n_users);
    // Fractional stepping fills each segment at its density exactly.
    let mut pos = 0.0f64;
    while (pos as u64) < break_at && ids.len() < cfg.n_users {
        ids.push(pos as u64);
        pos += 1.0 / cfg.early_density;
    }
    let mut pos = break_at as f64;
    while ids.len() < cfg.n_users {
        ids.push(pos as u64);
        pos += 1.0 / cfg.late_density;
    }
    // The scanned space ends exactly at the last valid ID + 1: the paper's
    // crawl ran "until the API returned accounts created just seconds before
    // the moment of collection", i.e. it ended on a valid account.
    let scanned = ids.last().map_or(scanned, |&last| last + 1);
    (ids, scanned)
}

/// Creation instant of every user, in ID order. RNG-free: timestamps ascend
/// with ID (sequential assignment, §3.1), users spread uniformly within
/// their year, and the final (crawl) year only runs through mid-March.
fn creation_times(cfg: &SynthConfig) -> Vec<SimTime> {
    let shares = year_shares();
    let mut out = Vec::with_capacity(cfg.n_users);
    let mut year_cursor = 0usize;
    let mut year_budget = shares[0] * cfg.n_users as f64;
    let mut year_start_index = 0usize;
    for i in 0..cfg.n_users {
        while (i as f64) > year_budget && year_cursor + 1 < shares.len() {
            year_cursor += 1;
            year_budget += shares[year_cursor] * cfg.n_users as f64;
            year_start_index = i;
        }
        let year = FIRST_YEAR + year_cursor as i32;
        // Position within the year, in creation order.
        let year_span = (year_budget - year_start_index as f64).max(1.0);
        let frac = ((i - year_start_index) as f64 / year_span).clamp(0.0, 0.999);
        // The crawl ended March 18, 2013; the final year holds only its
        // first ~76 days.
        let days_in_year = if year >= SNAPSHOT_YEAR { 75.0 } else { 364.0 };
        let day_of_year = (frac * days_in_year) as i64;
        out.push(SimTime::from_ymd(year, 1, 1) + day_of_year * steam_model::time::DAY);
    }
    out
}

/// One chunk's worth of users; merged in chunk order.
struct Chunk {
    accounts: Vec<Account>,
    engagement: Vec<f64>,
    archetype: Vec<Archetype>,
    true_country: Vec<CountryCode>,
    true_city: Vec<u16>,
    z_degree: Vec<f64>,
    z_library: Vec<f64>,
    z_playtime: Vec<f64>,
}

/// Generates the population. Accounts come out sorted by Steam ID with
/// creation times increasing (IDs are assigned sequentially, §3.1). Each
/// `USERS_CHUNK`-sized chunk of users draws from its own `accounts` seed
/// stream, so the result is identical for every `jobs`.
pub fn generate_population(cfg: &SynthConfig, jobs: usize) -> Population {
    let (id_indices, scanned_id_space) = id_layout(cfg);
    let created = creation_times(cfg);
    let country_shares: Vec<f64> = CountryCode::TABLE1_SHARES
        .iter()
        .map(|(_, s)| *s)
        .chain([CountryCode::OTHER_SHARE])
        .collect();

    let chunks = run_chunks(jobs, cfg.n_users, USERS_CHUNK, |c, range| {
        let mut rng = stage_rng(cfg.seed, "accounts", c as u64);
        let mut out = Chunk {
            accounts: Vec::with_capacity(range.len()),
            engagement: Vec::with_capacity(range.len()),
            archetype: Vec::with_capacity(range.len()),
            true_country: Vec::with_capacity(range.len()),
            true_city: Vec::with_capacity(range.len()),
            z_degree: Vec::with_capacity(range.len()),
            z_library: Vec::with_capacity(range.len()),
            z_playtime: Vec::with_capacity(range.len()),
        };
        for i in range {
            // Everyone lives somewhere; Table 1's shares are the residence
            // marginals. Whether a profile *reports* it is a separate flip.
            let resident = {
                let c = categorical(&mut rng, &country_shares);
                if c < CountryCode::NAMED {
                    CountryCode::TABLE1_SHARES[c].0
                } else {
                    // Spread the "other" mass over 226 countries, Zipf-ish.
                    let o = (rng.gen::<f64>().powf(2.0)
                        * f64::from(CountryCode::OTHER_COUNT)) as u8;
                    CountryCode::Other(o.min(CountryCode::OTHER_COUNT - 1))
                }
            };
            let home_city = rng.gen_range(0..cfg.cities_per_country);
            let country = chance(&mut rng, cfg.country_report_rate).then_some(resident);
            // City reporting implies country reporting.
            let city = (country.is_some()
                && chance(&mut rng, cfg.city_report_rate / cfg.country_report_rate))
            .then_some(home_city);

            let e = (0.9 * normal(&mut rng)).exp();
            let arch = if chance(&mut rng, cfg.collector_rate) {
                Archetype::Collector
            } else if chance(&mut rng, cfg.idle_farmer_rate) {
                Archetype::IdleFarmer
            } else {
                Archetype::Typical
            };

            // Steam level loosely follows engagement (levels come from
            // playing and trading); it feeds the friend cap (+5 slots per
            // level). Most users never level up, so the default 250-friend
            // cap stays the dominant cliff in Figure 2.
            let level = if chance(&mut rng, 0.18) { ((e * 2.5) as u16).min(60) } else { 0 };

            out.accounts.push(Account {
                id: SteamId::from_index(id_indices[i]),
                created_at: created[i],
                visibility: if chance(&mut rng, cfg.private_rate) {
                    Visibility::Private
                } else {
                    Visibility::Public
                },
                country,
                city,
                level,
                facebook_linked: chance(&mut rng, cfg.facebook_rate),
            });
            out.engagement.push(e);
            out.archetype.push(arch);
            out.true_country.push(resident);
            out.true_city.push(home_city);
            out.z_degree.push(normal(&mut rng));
            out.z_library.push(normal(&mut rng));
            out.z_playtime.push(normal(&mut rng));
        }
        out
    });

    let mut accounts = Vec::with_capacity(cfg.n_users);
    let mut latents = Latents {
        engagement: Vec::with_capacity(cfg.n_users),
        archetype: Vec::with_capacity(cfg.n_users),
        true_country: Vec::with_capacity(cfg.n_users),
        true_city: Vec::with_capacity(cfg.n_users),
        z_degree: Vec::with_capacity(cfg.n_users),
        z_library: Vec::with_capacity(cfg.n_users),
        z_playtime: Vec::with_capacity(cfg.n_users),
    };
    for mut c in chunks {
        accounts.append(&mut c.accounts);
        latents.engagement.append(&mut c.engagement);
        latents.archetype.append(&mut c.archetype);
        latents.true_country.append(&mut c.true_country);
        latents.true_city.append(&mut c.true_city);
        latents.z_degree.append(&mut c.z_degree);
        latents.z_library.append(&mut c.z_library);
        latents.z_playtime.append(&mut c.z_playtime);
    }

    Population { accounts, scanned_id_space, latents }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population() -> (Population, SynthConfig) {
        let cfg = SynthConfig::small(3);
        (generate_population(&cfg, 1), cfg)
    }

    #[test]
    fn accounts_sorted_and_counted() {
        let (p, cfg) = population();
        assert_eq!(p.accounts.len(), cfg.n_users);
        for w in p.accounts.windows(2) {
            assert!(w[0].id < w[1].id, "ids must ascend");
            assert!(w[0].created_at <= w[1].created_at, "creation must ascend");
        }
        assert_eq!(p.latents.engagement.len(), cfg.n_users);
        assert_eq!(p.latents.archetype.len(), cfg.n_users);
    }

    #[test]
    fn id_space_density_profile() {
        let (p, cfg) = population();
        assert!(p.scanned_id_space > cfg.n_users as u64);
        let break_at = (p.scanned_id_space as f64 * cfg.density_break) as u64;
        let early =
            p.accounts.iter().filter(|a| a.id.index() < break_at).count() as f64;
        let late = cfg.n_users as f64 - early;
        let early_density = early / break_at as f64;
        let late_density = late / (p.scanned_id_space - break_at) as f64;
        assert!((early_density - cfg.early_density).abs() < 0.05, "{early_density}");
        assert!((late_density - cfg.late_density).abs() < 0.05, "{late_density}");
    }

    #[test]
    fn growth_is_convex() {
        let (p, _) = population();
        let mut per_year = std::collections::BTreeMap::new();
        for a in &p.accounts {
            *per_year.entry(a.created_at.year()).or_insert(0u64) += 1;
        }
        // Later years must dominate earlier ones.
        assert!(per_year[&2012] > per_year[&2008]);
        assert!(per_year[&2008] > per_year[&2004]);
        // Monotone non-decreasing yearly creations.
        let counts: Vec<u64> = per_year.values().copied().collect();
        for w in counts.windows(2) {
            assert!(w[1] >= w[0], "growth should not shrink: {per_year:?}");
        }
    }

    #[test]
    fn location_report_rates() {
        let (p, cfg) = population();
        let n = p.accounts.len() as f64;
        let with_country = p.accounts.iter().filter(|a| a.country.is_some()).count() as f64;
        let with_city = p.accounts.iter().filter(|a| a.city.is_some()).count() as f64;
        assert!((with_country / n - cfg.country_report_rate).abs() < 0.01);
        assert!((with_city / n - cfg.city_report_rate).abs() < 0.01);
        // City reporters always report a country.
        assert!(p.accounts.iter().all(|a| a.city.is_none() || a.country.is_some()));
    }

    #[test]
    fn us_is_top_reported_country() {
        let (p, _) = population();
        let mut counts = std::collections::HashMap::new();
        for a in p.accounts.iter().filter_map(|a| a.country) {
            *counts.entry(a).or_insert(0u32) += 1;
        }
        let (&top, _) = counts.iter().max_by_key(|(_, &c)| c).unwrap();
        assert_eq!(top, CountryCode::UnitedStates);
    }

    #[test]
    fn archetypes_are_rare() {
        let (p, _) = population();
        let collectors =
            p.latents.archetype.iter().filter(|a| **a == Archetype::Collector).count();
        let farmers =
            p.latents.archetype.iter().filter(|a| **a == Archetype::IdleFarmer).count();
        assert!(collectors < 40, "{collectors} collectors in 30k users");
        assert!(farmers < 60, "{farmers} idle farmers in 30k users");
    }

    #[test]
    fn deterministic() {
        let cfg = SynthConfig::small(5);
        let a = generate_population(&cfg, 1);
        let b = generate_population(&cfg, 1);
        assert_eq!(a.latents.engagement, b.latents.engagement);
        assert_eq!(a.accounts.len(), b.accounts.len());
        assert!(a
            .accounts
            .iter()
            .zip(&b.accounts)
            .all(|(x, y)| x.id == y.id && x.country == y.country));
    }

    #[test]
    fn jobs_invariant() {
        let cfg = SynthConfig::small(5);
        let serial = generate_population(&cfg, 1);
        let parallel = generate_population(&cfg, 4);
        assert_eq!(serial.accounts, parallel.accounts);
        assert_eq!(serial.latents.engagement, parallel.latents.engagement);
        assert_eq!(serial.latents.z_playtime, parallel.latents.z_playtime);
    }
}
