//! Fixed-chunk parallel fan-out for the generator stages.
//!
//! The decomposition contract: every stage splits its item range into chunks
//! of a **compile-time size** (never a function of the worker count), gives
//! each chunk its own seed stream (see [`crate::seed`]), and merges chunk
//! outputs in chunk-index order. Workers claim chunks through an atomic
//! cursor — the same pattern as `steam-analysis::engine` and the crawler's
//! phase-2 harvest — so the schedule balances load while the output stays
//! byte-identical for any `jobs`, including `jobs = 1`, which runs inline
//! without spawning.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Users per chunk in the per-user stages (accounts, ownership, groups,
/// evolve). Changing this re-baselines every seed-sensitive assertion.
pub const USERS_CHUNK: usize = 4096;
/// Products per chunk in catalog generation.
pub const PRODUCTS_CHUNK: usize = 1024;
/// Games per chunk in the achievement-assignment pass.
pub const GAMES_CHUNK: usize = 512;
/// Edges per chunk when drawing friendship timestamps.
pub const EDGES_CHUNK: usize = 16_384;
/// Panel users per chunk when drawing the seven-day diaries.
pub const PANEL_CHUNK: usize = 1_024;

/// Splits `0..n_items` into `chunk_size`-sized chunks, runs `f(chunk_idx,
/// range)` for each, and returns the results in chunk order. `jobs <= 1`
/// runs inline; otherwise up to `jobs` scoped workers claim chunks through
/// an atomic cursor.
pub fn run_chunks<T, F>(jobs: usize, n_items: usize, chunk_size: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, std::ops::Range<usize>) -> T + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let n_chunks = n_items.div_ceil(chunk_size);
    let range = |c: usize| c * chunk_size..((c + 1) * chunk_size).min(n_items);
    if jobs <= 1 || n_chunks <= 1 {
        return (0..n_chunks).map(|c| f(c, range(c))).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
    let workers = jobs.min(n_chunks);
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let c = cursor.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    break;
                }
                let out = f(c, range(c));
                *slots[c].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
            });
        }
    })
    .expect("chunk worker panicked");

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every chunk claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_items_in_order() {
        for jobs in [1, 2, 8] {
            let out = run_chunks(jobs, 1000, 64, |c, r| (c, r.start, r.end));
            assert_eq!(out.len(), 1000usize.div_ceil(64));
            for (i, (c, lo, hi)) in out.iter().enumerate() {
                assert_eq!(*c, i);
                assert_eq!(*lo, i * 64);
                assert_eq!(*hi, (1000).min((i + 1) * 64));
            }
        }
    }

    #[test]
    fn jobs_invariant_results() {
        let work = |c: usize, r: std::ops::Range<usize>| -> u64 {
            r.map(|i| (i as u64).wrapping_mul(c as u64 + 1)).sum()
        };
        let serial = run_chunks(1, 10_000, 128, work);
        let parallel = run_chunks(8, 10_000, 128, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_input_yields_no_chunks() {
        let out = run_chunks(4, 0, 64, |c, _| c);
        assert!(out.is_empty());
    }
}
