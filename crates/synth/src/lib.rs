//! # steam-synth
//!
//! The calibrated synthetic Steam population — the data substitute for the
//! proprietary 108.7 M-account crawl behind *Condensing Steam* (IMC 2016).
//!
//! The generator is a mechanism-level model, not a curve tracer: heavy tails
//! come from multiplicative (lognormal) engagement with Pareto-tail
//! archetype mixtures, homophily comes from engagement-sorted attachment,
//! the 250/300 degree cliffs come from actually enforcing Steam's friend
//! caps, the collector anomalies in Figures 4 and 8 come from a collector
//! archetype, and §8's tail-vs-body growth asymmetry comes from
//! multiplicative yearly acquisition. Calibration targets and measured
//! values are tabulated in EXPERIMENTS.md.
//!
//! Entry point: [`Generator`] with a [`SynthConfig`].
//!
//! ```
//! use steam_synth::{Generator, SynthConfig};
//! let snapshot = Generator::new(SynthConfig::small(42)).generate();
//! assert_eq!(snapshot.n_users(), 30_000);
//! ```

pub mod accounts;
pub mod catalog;
pub mod config;
pub mod evolve;
pub mod friends;
pub mod generate;
pub mod groups;
pub mod ownership;
pub mod panel;
pub mod par;
pub mod samplers;
pub mod seed;

pub use accounts::{Archetype, Latents, Population};
pub use catalog::CatalogModel;
pub use config::SynthConfig;
pub use generate::{CatalogLatents, GenTimings, Generator, World};
