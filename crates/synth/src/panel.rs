//! The week-long playtime panel (Figure 12).
//!
//! The paper sampled 0.5% of users uniformly across the lifetime-playtime
//! ordering and recorded daily playtime for one week (Nov 1–7, 2014). The
//! headline observation: day-to-day behavior is bursty — many users who
//! played nothing on day one played substantially on later days — yet the
//! heavy players stay heavier on average.
//!
//! Two seed streams: `panel.sample` (a single offset draw picks the
//! stride's phase) and `panel.days` (fanned out over chunks of the selected
//! panel users; each user's seven diary days are independent).

use rand::rngs::StdRng;
use rand::Rng;
use steam_model::{Snapshot, WeekPanel};

use crate::par::{run_chunks, PANEL_CHUNK};
use crate::samplers::{chance, lognormal};
use crate::seed::stage_rng;

/// Fraction of users sampled into the panel (the paper used 0.5%).
pub const PANEL_FRACTION: f64 = 0.005;

/// Draws one panel user's seven diary days.
fn diary_week(rng: &mut StdRng, snapshot: &Snapshot, u: u32) -> [u32; 7] {
    // Daily propensity scales with the user's recent activity; users
    // with no two-week playtime still have a small chance of playing.
    let two_week: u64 = snapshot.ownerships[u as usize]
        .iter()
        .map(|o| u64::from(o.playtime_2weeks_min))
        .sum();
    let daily_mean = (two_week as f64 / 14.0).max(0.0);
    let mut days = [0u32; 7];
    for (d, out) in days.iter_mut().enumerate() {
        // Play probability: actives play most days; inactives rarely.
        let p_play: f64 = if two_week > 0 { 0.60 } else { 0.05 };
        // Weekend boost (days 0 and 6 — the paper's window started on a
        // Saturday).
        let weekend = if d == 0 || d == 6 { 1.5 } else { 1.0 };
        if chance(rng, (p_play * weekend).min(0.95)) {
            // Bursty lognormal around the personal mean; recently-idle
            // users who do play put in a short session.
            // A session is at least ~half an hour; heavy players scale
            // with their personal mean.
            let mean = daily_mean.max(30.0);
            let minutes = lognormal(rng, mean.ln(), 0.9);
            *out = (minutes.round() as u32).min(24 * 60);
        }
    }
    days
}

/// Builds the panel from a snapshot: stratified-uniform sample over the
/// total-playtime ordering, then seven days of bursty play per user.
pub fn generate_panel(seed: u64, snapshot: &Snapshot, jobs: usize) -> WeekPanel {
    let n = snapshot.n_users();
    // Order users by lifetime playtime (the paper's sampling frame).
    let totals: Vec<u64> = snapshot
        .ownerships
        .iter()
        .map(|lib| lib.iter().map(|o| u64::from(o.playtime_forever_min)).sum())
        .collect();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&u| totals[u as usize]);

    // Uniform stride over the ordering = uniform random sample across the
    // playtime spectrum.
    let step = (1.0 / PANEL_FRACTION) as usize;
    let offset = stage_rng(seed, "panel.sample", 0).gen_range(0..step.max(1));

    let users: Vec<u32> = (offset..n).step_by(step.max(1)).map(|pos| order[pos]).collect();
    let chunks = run_chunks(jobs, users.len(), PANEL_CHUNK, |c, range| {
        let mut rng = stage_rng(seed, "panel.days", c as u64);
        range
            .map(|i| diary_week(&mut rng, snapshot, users[i]))
            .collect::<Vec<_>>()
    });
    let mut daily_minutes = Vec::with_capacity(users.len());
    for mut c in chunks {
        daily_minutes.append(&mut c);
    }
    WeekPanel { users, daily_minutes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthConfig;
    use crate::generate::Generator;

    fn build() -> (Snapshot, WeekPanel) {
        let world = Generator::new(SynthConfig::small(41)).generate_world();
        // The panel is generated off the *second* snapshot (Nov 2014 in the
        // paper's timeline), so activity comparisons must use it too.
        (world.second_snapshot, world.panel)
    }

    #[test]
    fn sample_fraction_near_half_percent() {
        let (snap, panel) = build();
        let frac = panel.len() as f64 / snap.n_users() as f64;
        assert!((frac - PANEL_FRACTION).abs() < 0.002, "fraction = {frac}");
        assert_eq!(panel.users.len(), panel.daily_minutes.len());
    }

    #[test]
    fn users_unique_and_in_range() {
        let (snap, panel) = build();
        let set: std::collections::HashSet<u32> = panel.users.iter().copied().collect();
        assert_eq!(set.len(), panel.users.len());
        assert!(panel.users.iter().all(|&u| (u as usize) < snap.n_users()));
    }

    #[test]
    fn daily_minutes_bounded_by_day_length() {
        let (_, panel) = build();
        for days in &panel.daily_minutes {
            for &m in days {
                assert!(m <= 24 * 60);
            }
        }
    }

    #[test]
    fn jobs_invariant() {
        let world = Generator::new(SynthConfig::small(41)).generate_world();
        let serial = generate_panel(41, &world.second_snapshot, 1);
        let parallel = generate_panel(41, &world.second_snapshot, 4);
        assert_eq!(serial.users, parallel.users);
        assert_eq!(serial.daily_minutes, parallel.daily_minutes);
    }

    #[test]
    fn behavior_is_bursty_but_ordered() {
        let (snap, panel) = build();
        // (1) Some users idle on day one play later in the week (the paper's
        // headline for Figure 12).
        let late_bloomers = panel
            .daily_minutes
            .iter()
            .filter(|d| d[0] == 0 && d[1..].iter().any(|&m| m > 0))
            .count();
        assert!(late_bloomers > 0, "panel shows no day-to-day burstiness");

        // (2) Recent-active users still average more weekly minutes than
        // inactive ones.
        let mut active_sum = 0.0;
        let mut active_n = 0.0;
        let mut idle_sum = 0.0;
        let mut idle_n = 0.0;
        for (&u, days) in panel.users.iter().zip(&panel.daily_minutes) {
            let week: u32 = days.iter().sum();
            let recent: u64 = snap.ownerships[u as usize]
                .iter()
                .map(|o| u64::from(o.playtime_2weeks_min))
                .sum();
            if recent > 0 {
                active_sum += f64::from(week);
                active_n += 1.0;
            } else {
                idle_sum += f64::from(week);
                idle_n += 1.0;
            }
        }
        if active_n > 5.0 && idle_n > 5.0 {
            assert!(
                active_sum / active_n > idle_sum / idle_n,
                "recent actives should play more during the panel week: \
                 active {:.1} min (n={active_n}) vs idle {:.1} min (n={idle_n})",
                active_sum / active_n,
                idle_sum / idle_n,
            );
        }
    }
}
