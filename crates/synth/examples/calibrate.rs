//! Calibration harness: prints the headline shape statistics against the
//! paper's targets so parameter changes can be judged at a glance.
use steam_synth::{Generator, SynthConfig};

fn pct(sorted: &[f64], q: f64) -> f64 {
    sorted[((sorted.len() - 1) as f64 * q) as usize]
}

fn main() {
    let world = Generator::new(SynthConfig::small(2016)).generate_world();
    let snap = &world.snapshot;
    let n = snap.n_users();

    let mut deg = vec![0u32; n];
    for e in &snap.friendships {
        deg[e.a as usize] += 1;
        deg[e.b as usize] += 1;
    }
    let mut dnz: Vec<f64> = deg.iter().filter(|&&d| d > 0).map(|&d| f64::from(d)).collect();
    dnz.sort_by(f64::total_cmp);
    println!("friends nz: p50={:.0} p80={:.0} p90={:.0} p95={:.0} p99={:.0} | mean_all={:.2} (paper 4/15/29/50/122, mean 3.6)",
        pct(&dnz,0.5), pct(&dnz,0.8), pct(&dnz,0.9), pct(&dnz,0.95), pct(&dnz,0.99),
        deg.iter().map(|&d| f64::from(d)).sum::<f64>() / n as f64);

    let idx = snap.catalog_index();
    let mut owned: Vec<f64> = Vec::new();
    let mut value: Vec<f64> = Vec::new();
    let mut total_h: Vec<f64> = Vec::new();
    let mut tw_owners: Vec<f64> = Vec::new();
    let mut games_per_user = 0f64;
    for (u, lib) in snap.ownerships.iter().enumerate() {
        games_per_user += lib.len() as f64;
        if lib.is_empty() { continue; }
        owned.push(lib.len() as f64);
        value.push(snap.account_value_cents(u as u32, &idx) as f64 / 100.0);
        let t: u64 = lib.iter().map(|o| u64::from(o.playtime_forever_min)).sum();
        if t > 0 { total_h.push(t as f64 / 60.0); }
        let tw: u64 = lib.iter().map(|o| u64::from(o.playtime_2weeks_min)).sum();
        tw_owners.push(tw as f64 / 60.0);
    }
    owned.sort_by(f64::total_cmp);
    value.sort_by(f64::total_cmp);
    total_h.sort_by(f64::total_cmp);
    tw_owners.sort_by(f64::total_cmp);
    println!("owned nz: p50={:.0} p80={:.0} p90={:.0} p95={:.0} p99={:.0} max={:.0} | games/user={:.2} (paper 4/10/21/39/115, 3.54)",
        pct(&owned,0.5), pct(&owned,0.8), pct(&owned,0.9), pct(&owned,0.95), pct(&owned,0.99), owned.last().unwrap(), games_per_user / n as f64);
    println!("value nz: p50=${:.0} p80=${:.0} p90=${:.0} p99=${:.0} max=${:.0} (paper 50/151/318/1594/24315)",
        pct(&value,0.5), pct(&value,0.8), pct(&value,0.9), pct(&value,0.99), value.last().unwrap());
    println!("total h nz: p50={:.0} p80={:.0} p90={:.0} p95={:.0} p99={:.0} (paper 34/336/740/1234/2660)",
        pct(&total_h,0.5), pct(&total_h,0.8), pct(&total_h,0.9), pct(&total_h,0.95), pct(&total_h,0.99));
    let zero_share = tw_owners.iter().filter(|&&h| h == 0.0).count() as f64 / tw_owners.len() as f64;
    let mut tw_nz: Vec<f64> = tw_owners.iter().copied().filter(|&h| h > 0.0).collect();
    tw_nz.sort_by(f64::total_cmp);
    println!("two-week: zero={:.2} | nz p50={:.1} p80={:.1} max={:.0} | owners p90={:.1} p95={:.1} p99={:.1} (paper >0.80, p80nz=32.05, 8.7/25.5/70.8)",
        zero_share, pct(&tw_nz,0.5), pct(&tw_nz,0.8), tw_nz.last().unwrap(), pct(&tw_owners,0.9), pct(&tw_owners,0.95), pct(&tw_owners,0.99));

    // homophily
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for e in &snap.friendships { adj[e.a as usize].push(e.b); adj[e.b as usize].push(e.a); }
    let spearman = |xs: &Vec<f64>, ys: &Vec<f64>| -> f64 {
        steam_stats::spearman(xs, ys).unwrap_or(f64::NAN)
    };
    let vals: Vec<f64> = (0..n).map(|u| snap.account_value_cents(u as u32, &idx) as f64).collect();
    let degs: Vec<f64> = deg.iter().map(|&d| f64::from(d)).collect();
    let totals: Vec<f64> = snap.ownerships.iter().map(|l| l.iter().map(|o| o.playtime_forever_min as f64).sum()).collect();
    let owneds: Vec<f64> = snap.ownerships.iter().map(|l| l.len() as f64).collect();
    for (name, attr, paper) in [("value", &vals, 0.77), ("degree", &degs, 0.62), ("playtime", &totals, 0.61), ("owned", &owneds, 0.45)] {
        let mut own = Vec::new(); let mut fr = Vec::new();
        for u in 0..n {
            if !adj[u].is_empty() {
                own.push(attr[u]);
                fr.push(adj[u].iter().map(|&v| attr[v as usize]).sum::<f64>() / adj[u].len() as f64);
            }
        }
        println!("homophily {name}: rho={:.2} (paper {paper})", spearman(&own, &fr));
    }
    // behavior correlations among engaged
    let engaged: Vec<usize> = (0..n).filter(|&u| owneds[u] > 0.0 && degs[u] > 0.0).collect();
    let pick = |attr: &Vec<f64>| -> Vec<f64> { engaged.iter().map(|&u| attr[u]).collect() };
    println!("corr(owned,friends)={:.2} (0.34) corr(owned,total)={:.2} (0.21) corr(friends,total)={:.2} (0.17)",
        spearman(&pick(&owneds), &pick(&degs)), spearman(&pick(&owneds), &pick(&totals)), spearman(&pick(&degs), &pick(&totals)));

    // two-week tail classification
    let tw_all: Vec<f64> = snap.ownerships.iter().map(|l| l.iter().map(|o| o.playtime_2weeks_min as f64).sum::<f64>()).filter(|&x| x > 0.0).collect();
    if let Some(rep) = steam_stats::classify_tail(&tw_all, &steam_stats::ClassifyOptions::default()) {
        println!("two-week class: {:?} (xmin={:.0}, n_tail={})", rep.class, rep.xmin, rep.n_tail);
    }
    let own_all: Vec<f64> = owned.clone();
    if let Some(rep) = steam_stats::classify_tail(&own_all, &steam_stats::ClassifyOptions::default()) {
        println!("ownership class: {:?}", rep.class);
    }
}
