//! Offline drop-in replacement for the subset of the `bytes` crate API this
//! workspace uses.
//!
//! `Bytes` is a cheaply cloneable, O(1)-advance view over shared immutable
//! storage (`Arc<Vec<u8>>` plus a start/end window) — the O(1) `advance` /
//! `split_to` matters because the codec decodes large snapshots by walking a
//! single `Bytes` cursor, which would be quadratic with a copying
//! implementation. `BytesMut` is a thin growable buffer that freezes into a
//! `Bytes`.

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Shared immutable byte buffer with an O(1)-advance window.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a view of `range` (relative to this view) sharing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(bytes: &'static [u8]) -> Self {
        Bytes::from_static(bytes)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

/// Cursor-style reader over a byte source.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice underflow");
        let mut filled = 0;
        while filled < dst.len() {
            let chunk = self.chunk();
            let n = chunk.len().min(dst.len() - filled);
            dst[filled..filled + n].copy_from_slice(&chunk[..n]);
            self.advance(n);
            filled += n;
        }
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Growable byte buffer that freezes into an immutable [`Bytes`].
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Appending writer over a growable byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_split() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(7);
        buf.put_slice(b"abcd");
        buf.put_f32_le(1.5);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.len(), 9);
        assert_eq!(bytes.get_u8(), 7);
        let head = bytes.split_to(4);
        assert_eq!(&head[..], b"abcd");
        assert_eq!(bytes.get_f32_le(), 1.5);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn slice_shares_window() {
        let bytes = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = bytes.slice(2..5);
        assert_eq!(&mid[..], &[2, 3, 4]);
        let tail = mid.slice(1..);
        assert_eq!(&tail[..], &[3, 4]);
    }

    #[test]
    fn advance_is_o1_window_move() {
        let mut bytes = Bytes::from((0..=255u8).collect::<Vec<_>>());
        bytes.advance(250);
        assert_eq!(bytes.remaining(), 6);
        assert_eq!(bytes.get_u8(), 250);
    }
}
