//! Offline drop-in replacement for the subset of the `rand` crate API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, dependency-free implementation: a deterministic xoshiro256**
//! generator seeded through SplitMix64, the `Rng`/`SeedableRng` traits with
//! `gen`, `gen_range`, and `gen_bool`, and a `prelude`. Stream values differ
//! from upstream `rand`'s `StdRng` (which is ChaCha12); every consumer in
//! this workspace only relies on determinism-for-a-seed and uniformity, not
//! on specific upstream streams.

pub mod rngs;

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, SeedableRng};
}

/// Uniform random generation of a value of `Self` from raw generator output.
pub trait FromRandom {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! from_random_int {
    ($($t:ty),*) => {$(
        impl FromRandom for $t {
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
from_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRandom for u128 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl FromRandom for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRandom for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as u32) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample (`Range` and `RangeInclusive`).
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let width = (hi - lo) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (width + 1)) as $t
            }
        }
    )*};
}
sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! sample_range_sint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let width = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % width) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let width = (hi as i64).wrapping_sub(lo as i64) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (width + 1)) as $t)
            }
        }
    )*};
}
sample_range_sint!(i8, i16, i32, i64, isize);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u: $t = FromRandom::from_rng(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let u: $t = FromRandom::from_rng(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
sample_range_float!(f32, f64);

/// The user-facing generator trait: raw output plus the convenience samplers
/// the workspace calls (`gen`, `gen_range`, `gen_bool`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn gen<T: FromRandom>(&mut self) -> T {
        T::from_rng(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        self.gen::<f64>() < p
    }

    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators: full-entropy seed or a convenience `u64` expansion.
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(2.0f64..4.0);
            assert!((2.0..4.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_support() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(17);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn from_seed_accepts_full_entropy() {
        let mut seed = [0u8; 32];
        seed[0] = 1;
        let mut a = StdRng::from_seed(seed);
        let mut b = StdRng::from_seed(seed);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
