//! Offline drop-in replacement for the subset of the `criterion` API this
//! workspace uses.
//!
//! Measurement model: each benchmark runs a short warmup, then `sample_size`
//! timed samples; when a single iteration is fast, iterations are batched
//! per sample so `Instant` overhead doesn't dominate. The median per-iter
//! time is printed to stdout. No statistical regression analysis, plots, or
//! result persistence — this exists to compare wall times offline.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Names one parameterized benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Units processed per iteration; folded into the printed report line.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Runs timed iterations for one benchmark; handed to bench closures.
pub struct Bencher {
    sample_size: usize,
    median: Duration,
}

impl Bencher {
    /// Times `routine`, batching iterations per sample when it is fast.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed call warms caches and sizes the batches.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed();

        let batch = if probe < Duration::from_micros(100) {
            (Duration::from_millis(1).as_nanos() / probe.as_nanos().max(1))
                .clamp(1, 100_000) as u32
        } else {
            1
        };

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(start.elapsed() / batch);
        }
        samples.sort();
        self.median = samples[samples.len() / 2];
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

fn run_and_report(name: &str, sample_size: usize, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        sample_size: sample_size.max(1),
        median: Duration::ZERO,
    };
    f(&mut bencher);
    let mut line = format!("{name:<48} time: {:>12}", fmt_duration(bencher.median));
    if let Some(t) = throughput {
        let per_sec = |count: u64| count as f64 / bencher.median.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => {
                line.push_str(&format!("   thrpt: {:.3e} elem/s", per_sec(n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("   thrpt: {:.3e} B/s", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

/// Collects related benchmarks under a shared name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_and_report(&full, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label);
        run_and_report(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 30,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_and_report(&name.into(), 30, None, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_nonzero_median() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("spin", |b| {
            b.iter(|| std::thread::sleep(Duration::from_micros(200)))
        });
        group.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.500 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
