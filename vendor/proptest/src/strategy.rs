//! The `Strategy` trait and core combinators (generate-only, no shrinking).

use std::marker::PhantomData;
use std::rc::Rc;

use rand::prelude::*;

/// A recipe for generating values of `Self::Value` from an RNG.
///
/// `generate` is the only required, object-safe method; the combinators all
/// carry `where Self: Sized` so `dyn Strategy<Value = T>` stays usable for
/// [`BoxedStrategy`].
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }

    fn prop_flat_map<S, F>(self, flat: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, flat }
    }

    fn prop_filter<F>(self, whence: &'static str, keep: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            keep,
            whence,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds a recursive strategy by applying `recurse` `depth` times to the
    /// leaf strategy. The branching/size hints accepted by upstream are
    /// ignored; callers keep leaf branches inside `recurse`'s `prop_oneof!`,
    /// which bounds expected value size the same way.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = recurse(strat.clone()).boxed();
        }
        strat
    }
}

/// Reference-counted type-erased strategy; `Clone` is a cheap pointer copy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    flat: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.flat)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    keep: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1_000 {
            let value = self.inner.generate(rng);
            if (self.keep)(&value) {
                return value;
            }
        }
        panic!("prop_filter rejected 1000 consecutive values: {}", self.whence);
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Picks between boxed branches, optionally with integer weights.
pub struct Union<T> {
    branches: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        Union::weighted(branches.into_iter().map(|b| (1, b)).collect())
    }

    pub fn weighted(branches: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
        let total_weight = branches.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union {
            branches,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (weight, branch) in &self.branches {
            let weight = u64::from(*weight);
            if pick < weight {
                return branch.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Values generable uniformly over their whole domain (for [`any`]).
pub trait Arbitrary {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
arbitrary_via_gen!(bool, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, f32, f64);

/// Marker strategy for `any::<T>()`; `Copy` so `[any::<u16>(); 7]` works.
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Any<T> {}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

// Integer and float ranges are strategies sampling uniformly over the range.
macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// Regex-subset string strategies: `"[a-z]{1,8}"` etc.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::sample_regex(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::sample_regex(self, rng)
    }
}

impl Strategy for () {
    type Value = ();

    fn generate(&self, _rng: &mut StdRng) {}
}

macro_rules! tuple_strategy {
    ( $( ($($name:ident),+) )* ) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
    (A, B, C, D, E, F, G, H, I, J, K)
    (A, B, C, D, E, F, G, H, I, J, K, L)
}

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = rng();
        let strat = (0u32..10, -5i32..=5, 0.0f64..1.0);
        for _ in 0..200 {
            let (a, b, c) = strat.generate(&mut rng);
            assert!(a < 10);
            assert!((-5..=5).contains(&b));
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn map_flat_map_compose() {
        let mut rng = rng();
        let strat = (1u32..5).prop_flat_map(|n| (0u32..n).prop_map(move |k| (n, k)));
        for _ in 0..200 {
            let (n, k) = strat.generate(&mut rng);
            assert!(k < n);
        }
    }

    #[test]
    fn union_hits_every_branch() {
        let mut rng = rng();
        let strat = Union::new(vec![Just(0u8).boxed(), Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            #[allow(dead_code)] // exists to give the recursion a payload
            Node(Vec<Tree>),
        }
        let leaf = Just(Tree::Leaf);
        let strat = leaf.prop_recursive(4, 64, 8, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        let mut rng = rng();
        for _ in 0..50 {
            let _ = strat.generate(&mut rng);
        }
    }

    #[test]
    fn array_strategy_generates_elements() {
        let mut rng = rng();
        let strat = [any::<u16>(); 7];
        let arr = strat.generate(&mut rng);
        assert_eq!(arr.len(), 7);
    }
}
