//! Offline drop-in replacement for the subset of the `proptest` API this
//! workspace uses.
//!
//! Differences from upstream, deliberate for an offline build:
//! - **No shrinking.** A failing case fails the test with the generated
//!   inputs printed via the panic message; upstream would first minimize.
//! - **Deterministic seeding.** Each test derives its RNG stream from the
//!   test name and case index, so failures reproduce exactly on re-run.
//! - **Regex string strategies** implement the subset of regex syntax the
//!   workspace's patterns need: one or more units, each a char class
//!   (`[a-z0-9_\-…]`, with ranges and backslash escapes), the printable
//!   class `\PC`, or a literal char, each optionally followed by `{m,n}`.

use rand::prelude::*;

pub mod collection;
pub mod option;
pub mod strategy;
mod string;

pub use strategy::{any, Any, BoxedStrategy, Just, Strategy, Union};

/// Namespace mirror so `prop::option::of` / `prop::collection::vec` resolve.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::ProptestConfig;
    // Macros are exported at the crate root; re-export for `use ...::*`.
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Per-test configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

fn fnv1a(text: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives one `proptest!`-generated test: a fresh deterministic RNG per case.
#[doc(hidden)]
pub fn run_cases(config: &ProptestConfig, test_name: &str, mut case: impl FnMut(&mut StdRng)) {
    let base = fnv1a(test_name);
    for index in 0..config.cases {
        let seed = base ^ u64::from(index).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = StdRng::seed_from_u64(seed);
        case(&mut rng);
    }
}

/// Declares property tests: `fn name(pat in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategies = ( $( $strat, )* );
                $crate::run_cases(&config, stringify!($name), |__proptest_rng| {
                    let ( $( $pat, )* ) =
                        $crate::Strategy::generate(&strategies, __proptest_rng);
                    $body
                });
            }
        )*
    };
}

/// Asserts a condition inside a property test (no shrinking: panics).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

/// Skips the current case when its precondition fails. Upstream rejects and
/// regenerates; without shrinking, silently returning from the case closure
/// is equivalent for the workspace's usage.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform (or `weight => strategy` weighted) choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:expr => $strat:expr ),+ $(,)? ) => {
        $crate::Union::weighted(vec![
            $( ($weight as u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::Union::new(vec![
            $( $crate::Strategy::boxed($strat) ),+
        ])
    };
}
