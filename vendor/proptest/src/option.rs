//! `Option` strategies (`prop::option::of`).

use rand::prelude::*;

use crate::strategy::Strategy;

pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
        // Upstream defaults to None with probability 1/4.
        if rng.gen_range(0u32..4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `Some` from the given strategy, or `None` about a quarter of the time.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let mut rng = StdRng::seed_from_u64(6);
        let strat = of(0u32..10);
        let values: Vec<_> = (0..200).map(|_| strat.generate(&mut rng)).collect();
        assert!(values.iter().any(Option::is_some));
        assert!(values.iter().any(Option::is_none));
    }
}
