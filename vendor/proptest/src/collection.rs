//! Collection strategies: `vec` and `btree_map` with a size range.

use std::collections::BTreeMap;

use rand::prelude::*;

use crate::strategy::Strategy;

/// Size specifications accepted by the collection strategies.
pub trait IntoSizeRange {
    /// Returns the inclusive `(min, max)` length bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for std::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end.saturating_sub(1))
    }
}

impl IntoSizeRange for std::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

fn sample_len(rng: &mut StdRng, min: usize, max: usize) -> usize {
    if min >= max {
        min
    } else {
        rng.gen_range(min..=max)
    }
}

pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = sample_len(rng, self.min, self.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    min: usize,
    max: usize,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = sample_len(rng, self.min, self.max);
        // Duplicate keys collapse, so the map may come up short of `len`;
        // upstream proptest has the same possibility and callers accept it.
        (0..len)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}

/// `BTreeMap` strategy with entry count drawn from `size`.
pub fn btree_map<K, V>(key: K, value: V, size: impl IntoSizeRange) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    let (min, max) = size.bounds();
    BTreeMapStrategy {
        key,
        value,
        min,
        max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_within_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let strat = vec(0u32..100, 2..7);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    #[test]
    fn empty_range_yields_empty_vec() {
        let mut rng = StdRng::seed_from_u64(4);
        let strat = vec(0u32..100, 0..1);
        assert!(strat.generate(&mut rng).is_empty());
    }

    #[test]
    fn btree_map_respects_max() {
        let mut rng = StdRng::seed_from_u64(5);
        let strat = btree_map(0u32..1000, 0u8..10, 0..6);
        for _ in 0..100 {
            assert!(strat.generate(&mut rng).len() < 6);
        }
    }
}
