//! Regex-subset sampler backing string strategies.
//!
//! Supported syntax (everything the workspace's patterns use):
//! - char classes `[...]` with literals, `a-z` ranges, and `\x` escapes
//!   (the escaped char taken literally); a trailing `-` is a literal
//! - `\PC` — any printable (non-control) char, mostly ASCII with an
//!   occasional non-ASCII char to exercise multi-byte handling
//! - literal chars, with `\x` escaping
//! - an optional `{m}` / `{m,n}` quantifier after any unit (default: one)

use rand::prelude::*;

enum Unit {
    /// Candidate chars, ranges expanded.
    Class(Vec<char>),
    /// `\PC`: printable chars.
    Printable,
}

struct Quantified {
    unit: Unit,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Quantified> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut units = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let unit = match chars[i] {
            '[' => {
                i += 1;
                let mut candidates = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let ch = if chars[i] == '\\' {
                        i += 1;
                        match chars.get(i) {
                            Some('n') => '\n',
                            Some('t') => '\t',
                            Some('r') => '\r',
                            Some(&c) => c,
                            None => panic!("dangling escape in pattern {pattern:?}"),
                        }
                    } else {
                        chars[i]
                    };
                    i += 1;
                    // `a-z` range: a `-` that is neither escaped nor last.
                    if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|&c| c != ']') {
                        let hi = chars[i + 1];
                        assert!(ch <= hi, "inverted range in pattern {pattern:?}");
                        candidates.extend(ch..=hi);
                        i += 2;
                    } else {
                        candidates.push(ch);
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
                i += 1; // consume ']'
                assert!(!candidates.is_empty(), "empty class in pattern {pattern:?}");
                Unit::Class(candidates)
            }
            '\\' if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') => {
                i += 3;
                Unit::Printable
            }
            '\\' => {
                i += 1;
                let ch = match chars.get(i) {
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some(&c) => c,
                    None => panic!("dangling escape in pattern {pattern:?}"),
                };
                i += 1;
                Unit::Class(vec![ch])
            }
            literal => {
                i += 1;
                Unit::Class(vec![literal])
            }
        };

        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"));
            let body: String = chars[i + 1..i + close].iter().collect();
            i += close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse().expect("bad quantifier min"),
                    hi.parse().expect("bad quantifier max"),
                ),
                None => {
                    let n = body.parse().expect("bad quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
        units.push(Quantified { unit, min, max });
    }
    units
}

/// Non-ASCII printable chars mixed in by `\PC` to exercise multi-byte paths.
const EXOTIC_PRINTABLE: &[char] = &['é', 'ß', 'Ω', 'π', '→', '中', '😀', '¡'];

fn sample_char(unit: &Unit, rng: &mut StdRng) -> char {
    match unit {
        Unit::Class(candidates) => candidates[rng.gen_range(0..candidates.len())],
        Unit::Printable => {
            if rng.gen_range(0u32..10) == 0 {
                EXOTIC_PRINTABLE[rng.gen_range(0..EXOTIC_PRINTABLE.len())]
            } else {
                // ASCII printable: space through tilde.
                char::from(rng.gen_range(0x20u8..=0x7e))
            }
        }
    }
}

pub fn sample_regex(pattern: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    for q in parse(pattern) {
        let count = if q.min >= q.max {
            q.min
        } else {
            rng.gen_range(q.min..=q.max)
        };
        for _ in 0..count {
            out.push(sample_char(&q.unit, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn class_with_ranges_and_quantifier() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = sample_regex("[a-zA-Z0-9 ,&=%]{0,12}", &mut rng);
            assert!(s.chars().count() <= 12);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " ,&=%".contains(c)));
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let mut rng = rng();
        let mut saw_dash = false;
        for _ in 0..500 {
            let s = sample_regex("[a-zA-Z0-9 _-]{1,30}", &mut rng);
            assert!(!s.is_empty());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == ' ' || c == '_' || c == '-'));
            saw_dash |= s.contains('-');
        }
        assert!(saw_dash);
    }

    #[test]
    fn escapes_and_unicode_literals_in_class() {
        // The workspace pattern after Rust unescaping:
        // [a-zA-Z0-9 _\-"\\<nl><tab>😀é]{0,20}
        let pattern = "[a-zA-Z0-9 _\\-\"\\\\\n\t😀é]{0,20}";
        let allowed = |c: char| {
            c.is_ascii_alphanumeric()
                || matches!(c, ' ' | '_' | '-' | '"' | '\\' | '\n' | '\t' | '😀' | 'é')
        };
        let mut rng = rng();
        for _ in 0..500 {
            assert!(sample_regex(pattern, &mut rng).chars().all(allowed));
        }
    }

    #[test]
    fn printable_class_never_emits_controls() {
        let mut rng = rng();
        for _ in 0..500 {
            let s = sample_regex("\\PC{0,64}", &mut rng);
            assert!(s.chars().count() <= 64);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn exact_count_quantifier() {
        let mut rng = rng();
        let s = sample_regex("[ab]{5}", &mut rng);
        assert_eq!(s.len(), 5);
    }
}
