//! Offline drop-in replacement for the subset of the `parking_lot` API this
//! workspace uses: `Mutex`/`RwLock` whose guards are returned directly
//! (no `Result` poisoning layer). Backed by the std primitives; a poisoned
//! std lock (panicked holder) is recovered transparently, matching
//! parking_lot's no-poisoning semantics.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn recovers_after_holder_panics() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std lock");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
