//! Offline drop-in replacement for the subset of the `crossbeam` API this
//! workspace uses: a bounded MPMC channel (`channel::bounded` with cloneable
//! `Receiver`, which std's mpsc cannot provide) and `thread::scope` for
//! borrowing scoped spawns.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        capacity: usize,
        not_empty: Condvar,
        not_full: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a bounded MPMC channel with room for `cap` queued messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::with_capacity(cap)),
            capacity: cap.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Blocks until there is queue room or no receiver remains.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let shared = &*self.shared;
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if shared.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                if queue.len() < shared.capacity {
                    queue.push_back(value);
                    drop(queue);
                    shared.not_empty.notify_one();
                    return Ok(());
                }
                queue = shared
                    .not_full
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let shared = &*self.shared;
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    shared.not_full.notify_one();
                    return Ok(value);
                }
                if shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = shared
                    .not_empty
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Returns a queued message without blocking, if one is ready.
        pub fn try_recv(&self) -> Option<T> {
            let shared = &*self.shared;
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            let value = queue.pop_front();
            if value.is_some() {
                drop(queue);
                shared.not_full.notify_one();
            }
            value
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they observe EOF.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last receiver gone: wake blocked senders so send() can fail.
                self.shared.not_full.notify_all();
            }
        }
    }
}

pub mod thread {
    /// Scope handle passed to the `scope` closure; mirrors crossbeam's
    /// `Scope::spawn(|_| ...)` call shape on top of `std::thread::scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope that joins all spawned threads before returning.
    ///
    /// Unlike crossbeam, a panicking child propagates on join via std's
    /// scope; the `Result` wrapper is kept for call-site compatibility.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvError};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn mpmc_fan_out_delivers_every_message() {
        let (tx, rx) = bounded::<usize>(4);
        let seen = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..3 {
                let rx = rx.clone();
                let seen = &seen;
                s.spawn(move |_| {
                    while let Ok(v) = rx.recv() {
                        seen.fetch_add(v, Ordering::SeqCst);
                    }
                });
            }
            drop(rx);
            for v in 1..=100 {
                tx.send(v).unwrap();
            }
            drop(tx);
        })
        .unwrap();
        assert_eq!(seen.load(Ordering::SeqCst), 5050);
    }

    #[test]
    fn recv_fails_after_last_sender_drops() {
        let (tx, rx) = bounded::<u8>(2);
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_last_receiver_drops() {
        let (tx, rx) = bounded::<u8>(2);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn scope_borrows_stack_data() {
        let data = [1, 2, 3];
        let total = super::thread::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(total, 6);
    }
}
