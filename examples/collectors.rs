//! Collector hunting (§5): find the accounts that own enormous libraries and
//! play almost none of it — the behavior behind Figure 4's uptick at
//! 1,268–1,290 games and Figure 8's bump at $14.7k–15.3k.
//!
//! ```text
//! cargo run --release --example collectors
//! ```

use condensing_steam::analysis::{ownership, Ctx};
use condensing_steam::synth::{Generator, SynthConfig};

fn main() {
    let snapshot = Generator::new(SynthConfig::medium(2016)).generate();
    let ctx = Ctx::new(&snapshot);

    let report = ownership::collector_report(&ctx);
    println!("collector signatures in a {}-user population:", ctx.n_users());
    println!(
        "  libraries ≥{} games with zero played: {} (paper found 29 with ≥500)",
        report.large_threshold, report.large_unplayed_libraries
    );
    println!(
        "  largest library: {} games = {:.1}% of the catalog, only {:.1}% ever played",
        report.max_library,
        report.max_library_catalog_share * 100.0,
        report.max_library_played_share * 100.0
    );
    println!(
        "  ownership uptick band 1268–1290: {} users (neighboring bands: {} / {})",
        report.uptick_band_users, report.band_below_users, report.band_above_users
    );

    // Walk the top ten libraries and characterize each owner the way the
    // paper's manual validation did.
    let mut order: Vec<usize> = (0..ctx.n_users()).collect();
    order.sort_by_key(|&u| std::cmp::Reverse(ctx.owned[u]));
    println!("\ntop 10 libraries:");
    println!(
        "{:<20} {:>7} {:>8} {:>11} {:>12}",
        "steam id", "owned", "played", "play share", "value"
    );
    for &u in order.iter().take(10) {
        let played_share = if ctx.owned[u] > 0 {
            f64::from(ctx.played[u]) / f64::from(ctx.owned[u])
        } else {
            0.0
        };
        println!(
            "{:<20} {:>7} {:>8} {:>10.1}% {:>11.2}$",
            snapshot.accounts[u].id,
            ctx.owned[u],
            ctx.played[u],
            played_share * 100.0,
            ctx.value_dollars(u)
        );
    }

    // The distinguishing test the paper applied: collectors are not heavy
    // *players* — their playtime is modest despite the libraries.
    let top_owner = order[0];
    println!(
        "\nlargest collector's lifetime playtime: {:.0} h (vs the population's 99th percentile of {:.0} h)",
        ctx.total_minutes[top_owner] as f64 / 60.0,
        {
            let mut hours: Vec<f64> = ctx
                .total_minutes
                .iter()
                .map(|&m| m as f64 / 60.0)
                .filter(|&h| h > 0.0)
                .collect();
            hours.sort_by(f64::total_cmp);
            hours[(hours.len() - 1) * 99 / 100]
        }
    );
}
