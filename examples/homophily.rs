//! §7 — correlations and homophily, with Figure 11's binned scatter.
//!
//! ```text
//! cargo run --release --example homophily
//! ```

use condensing_steam::analysis::{homophily, Ctx};
use condensing_steam::graph::degree_assortativity;
use condensing_steam::synth::{Generator, SynthConfig};

fn main() {
    let snapshot = Generator::new(SynthConfig::medium(2016)).generate();
    let ctx = Ctx::new(&snapshot);

    println!("behavior correlations (Spearman ρ, ours vs paper):");
    for c in homophily::behavior_correlations(&ctx) {
        println!(
            "  {:<44} ρ = {:>5.2}  (paper {:>5.2}, {})",
            c.label,
            c.rho,
            c.paper_rho,
            c.strength.as_str()
        );
    }

    println!("\nhomophily (user attribute vs mean of friends'):");
    for c in homophily::homophily_correlations(&ctx) {
        println!(
            "  {:<44} ρ = {:>5.2}  (paper {:>5.2}, {})",
            c.label,
            c.rho,
            c.paper_rho,
            c.strength.as_str()
        );
    }

    if let Some(r) = degree_assortativity(&ctx.graph) {
        println!("\ndegree assortativity (Newman r): {r:.3}");
    }

    // Figure 11 as a binned scatter: mean friends' value by own-value decade.
    let (own, friends) = homophily::figure11_scatter(&ctx);
    println!("\nFigure 11 (binned): own market value → friends' mean market value");
    let mut bins: Vec<(f64, f64, u64)> = vec![(0.0, 0.0, 0); 8];
    for (o, f) in own.iter().zip(&friends) {
        let bin = if *o < 1.0 { 0 } else { ((o.log10() + 1.0) as usize).min(bins.len() - 1) };
        bins[bin].0 += o;
        bins[bin].1 += f;
        bins[bin].2 += 1;
    }
    for (i, (so, sf, n)) in bins.iter().enumerate() {
        if *n > 10 {
            println!(
                "  decade {:>2}: own ${:>9.2} → friends ${:>9.2}   ({} users)",
                i as i32 - 1,
                so / *n as f64,
                sf / *n as f64,
                n
            );
        }
    }
    println!(
        "\nFriends' mean value rises monotonically with own value — the \
         pattern behind the paper's ρ = 0.77."
    );
}
