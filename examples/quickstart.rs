//! Quickstart: generate a synthetic Steam population and print the paper's
//! headline summary (Table 3) plus a few §6 concentration numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use condensing_steam::analysis::summary::percentile_table;
use condensing_steam::analysis::{playtime, Ctx};
use condensing_steam::synth::{Generator, SynthConfig};

fn main() {
    // 30k users, fully deterministic for a given seed.
    let snapshot = Generator::new(SynthConfig::small(42)).generate();
    println!(
        "generated {} users / {} friendships / {} owned games\n",
        snapshot.n_users(),
        snapshot.n_friendships(),
        snapshot.n_owned_games()
    );

    // Table 3 — the percentile ladder the paper's Discussion opens with.
    println!("{}", percentile_table(&snapshot));

    // §6.1 — the 80-20 structure of playtime.
    let ctx = Ctx::new(&snapshot);
    let cdf = playtime::playtime_cdf(&ctx);
    println!(
        "top 20% of gamers hold {:.1}% of all playtime (paper: 82.4%)",
        cdf.top20_total_share * 100.0
    );
    println!(
        "{:.1}% of gamers played nothing in the two-week window (paper: >80%)",
        cdf.two_week_zero_share * 100.0
    );
}
