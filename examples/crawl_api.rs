//! End-to-end crawl demo: serve a generated snapshot as the emulated Steam
//! Web API over real TCP, crawl it back with the paper's three-phase
//! pipeline (self-throttled to 85% of the server's limit), and verify the
//! reconstruction is lossless.
//!
//! ```text
//! cargo run --release --example crawl_api
//! ```

use std::sync::Arc;

use condensing_steam::api::{serve, Crawler, CrawlerConfig, RateLimit};
use condensing_steam::synth::{Generator, SynthConfig};

fn main() {
    let mut cfg = SynthConfig::small(7);
    cfg.n_users = 1_000;
    cfg.n_products = 500;
    cfg.n_groups = 80;
    let original = Arc::new(Generator::new(cfg).generate());
    println!("population: {} users, {} products", original.n_users(), original.catalog.len());

    // Serve with a server-side quota; throttle ourselves to 85% of it, as
    // the paper did against the real API (§3.1).
    let server_rps = 4_000.0;
    let (server, _service) = serve(
        Arc::clone(&original),
        "127.0.0.1:0",
        4,
        RateLimit { per_key_rps: server_rps, burst: 200.0 },
    )
    .expect("bind API server");
    println!("emulated Steam Web API listening on {}", server.addr());

    let config = CrawlerConfig {
        self_throttle_rps: Some(server_rps * 0.85),
        ..CrawlerConfig::default()
    };
    let mut crawler = Crawler::new(server.addr(), config);

    let started = std::time::Instant::now();
    let crawled = crawler.crawl(original.collected_at).expect("crawl");
    let stats = crawler.stats();
    println!(
        "crawl finished in {:.1?}: {} requests, {} profiles, {} ids scanned, {} retries",
        started.elapsed(),
        stats.requests,
        stats.profiles_found,
        stats.ids_scanned,
        stats.retries_observed
    );

    // Lossless reconstruction.
    crawled.validate().expect("crawled snapshot valid");
    assert_eq!(crawled.n_users(), original.n_users());
    assert_eq!(crawled.friendships, original.friendships);
    assert_eq!(crawled.ownerships, original.ownerships);
    assert_eq!(crawled.catalog, original.catalog);
    println!("crawled snapshot matches the served snapshot record-for-record ✓");

    let density = stats.profiles_found as f64 / crawled.scanned_id_space as f64;
    println!(
        "ID-space density: {:.1}% valid over {} scanned IDs (the paper saw <50% early, >90% late)",
        density * 100.0,
        crawled.scanned_id_space
    );
}
