//! §10.2 — game-addiction screening thresholds.
//!
//! The paper argues its census-scale data can ground the addiction debate:
//! "the top 1% play more than 5 hours a day, have hundreds of games, or have
//! spent thousands of dollars." This example computes those cutoffs from the
//! generated population and counts how many users each flags.
//!
//! ```text
//! cargo run --release --example addiction_screen
//! ```

use condensing_steam::analysis::Ctx;
use condensing_steam::stats::Ecdf;
use condensing_steam::synth::{Generator, SynthConfig};

fn main() {
    let snapshot = Generator::new(SynthConfig::medium(2016)).generate();
    let ctx = Ctx::new(&snapshot);

    // Daily play rate over the two-week window, hours/day, among owners.
    let daily_hours: Vec<f64> = (0..ctx.n_users())
        .filter(|&u| ctx.owned[u] > 0)
        .map(|u| ctx.two_week_minutes[u] as f64 / 60.0 / 14.0)
        .collect();
    let games: Vec<f64> = Ctx::nonzero_f64(&ctx.owned);
    let dollars: Vec<f64> = (0..ctx.n_users())
        .map(|u| ctx.value_dollars(u))
        .filter(|&v| v > 0.0)
        .collect();

    let p99 = |data: &[f64]| Ecdf::new(data.to_vec()).percentile(99.0);
    let daily_cut = p99(&daily_hours);
    let games_cut = p99(&games);
    let dollars_cut = p99(&dollars);

    println!("top-1% thresholds in a {}-user population:", ctx.n_users());
    println!("  daily playtime ≥ {daily_cut:.1} h/day (paper: >5 h/day)");
    println!("  library size   ≥ {games_cut:.0} games (paper: hundreds)");
    println!("  market value   ≥ ${dollars_cut:.0} (paper: thousands of dollars)");

    // How many users trip each wire — and how much they overlap.
    let mut by_play = 0u64;
    let mut by_games = 0u64;
    let mut by_money = 0u64;
    let mut any = 0u64;
    let mut all = 0u64;
    for u in 0..ctx.n_users() {
        let play = ctx.owned[u] > 0
            && ctx.two_week_minutes[u] as f64 / 60.0 / 14.0 >= daily_cut;
        let lib = f64::from(ctx.owned[u]) >= games_cut;
        let money = ctx.value_dollars(u) >= dollars_cut;
        by_play += u64::from(play);
        by_games += u64::from(lib);
        by_money += u64::from(money);
        any += u64::from(play || lib || money);
        all += u64::from(play && lib && money);
    }
    println!("\nflagged users:");
    println!("  by playtime: {by_play}");
    println!("  by library:  {by_games}");
    println!("  by money:    {by_money}");
    println!("  any signal:  {any} ({:.2}% of users)", any as f64 / ctx.n_users() as f64 * 100.0);
    println!("  all three:   {all}");
    println!(
        "\nThe union is much larger than the intersection: heavy time, heavy \
         collecting and heavy spending are mostly *different* people — the \
         paper's point that the long tail is made of distinct motivations."
    );
}
