//! The acceptance suite: every headline finding of the paper, asserted on
//! one fresh world through the public facade. If this file is green, the
//! reproduction reproduces.

use std::sync::OnceLock;

use condensing_steam::analysis::{
    achievements, evolution, genre, homophily, money, ownership, playtime, social, summary, Ctx,
};
use condensing_steam::model::Genre;
use condensing_steam::synth::{Generator, SynthConfig, World};

static WORLD: OnceLock<World> = OnceLock::new();

fn world() -> &'static World {
    WORLD.get_or_init(|| {
        let mut cfg = SynthConfig::small(777);
        cfg.n_users = 50_000;
        cfg.n_groups = 1_500;
        Generator::new(cfg).generate_world()
    })
}

fn ctx() -> Ctx<'static> {
    Ctx::new(&world().snapshot)
}

#[test]
fn finding_1_diverse_heavy_tailed_behavior() {
    // "Gamer behavior is highly diverse and characterized by heavy-tailed
    // distributions" — every Table 3 ladder must span at least an order of
    // magnitude between median and 99th percentile.
    let table = summary::percentile_table(&world().snapshot);
    for row in &table.rows {
        if row.attribute == "Two-week playtime" {
            continue; // median is zero by construction (Figure 6)
        }
        let (p50, p99) = (row.values[0], row.values[4]);
        assert!(
            p99 >= p50 * 8.0,
            "{}: p50 {p50} → p99 {p99} is not heavy-tailed",
            row.attribute
        );
    }
}

#[test]
fn finding_2_modest_majority() {
    // "Most players exhibit modest behaviors ... the majority of users
    // exhibit behaviors far below these values."
    let ctx = ctx();
    let f = playtime::playtime_cdf(&ctx);
    assert!(f.two_week_zero_share > 0.7, "{}", f.two_week_zero_share);
    let d = ownership::ownership_distribution(&ctx);
    assert!(d.under_20_share > 0.8, "{}", d.under_20_share);
}

#[test]
fn finding_3_pareto_concentration() {
    // §6.1's 80-20 structure in playtime and money.
    let ctx = ctx();
    let f = playtime::playtime_cdf(&ctx);
    assert!(f.top20_total_share > 0.7, "{}", f.top20_total_share);
    let m = money::market_value_distribution(&ctx);
    assert!(m.top20_share > 0.55, "{}", m.top20_share);
}

#[test]
fn finding_4_friendships_low_but_multiplayer_dominates() {
    // "The number of friendships is low relative to other social networks,
    // but most of the playtime is spent on multiplayer games."
    let ctx = ctx();
    let mean_degree = ctx.graph.mean_degree();
    assert!(mean_degree < 10.0, "mean degree = {mean_degree}");
    let mp = playtime::multiplayer_shares(&ctx);
    assert!(mp.total_playtime_share > 0.5, "{}", mp.total_playtime_share);
    assert!(mp.total_playtime_share > mp.catalog_share);
}

#[test]
fn finding_5_homophily_everywhere() {
    // "Players tend to befriend those who are similar in terms of
    // popularity, playtime, money spent, and games owned."
    let ctx = ctx();
    for c in homophily::homophily_correlations(&ctx) {
        assert!(c.rho > 0.1, "{} = {}", c.label, c.rho);
    }
}

#[test]
fn finding_6_collectors_exist() {
    // §5's long-tail motivations: someone owns a huge, mostly unplayed
    // library.
    let ctx = ctx();
    let c = ownership::collector_report(&ctx);
    assert!(c.max_library > 300, "max library = {}", c.max_library);
    assert!(c.max_library_played_share < 0.5, "{}", c.max_library_played_share);
}

#[test]
fn finding_7_playtime_varies_day_to_day() {
    // §8 / Figure 12: "their playtime is not consistent from day to day",
    // yet heavy players stay heavier.
    let view = evolution::panel_view(&world().panel);
    assert!(view.late_bloomer_share() > 0.05, "{}", view.late_bloomer_share());
    let (light, heavy) = view.half_means();
    assert!(heavy > light);
}

#[test]
fn finding_8_achievement_coupling_in_band() {
    // §9: moderate playtime correlation only on the 1–90 achievement band.
    let ctx = ctx();
    let c = achievements::playtime_achievement_correlation(&ctx);
    assert!(c.band_1_to_90 > 0.2, "{}", c.band_1_to_90);
    assert!(c.band_1_to_90 > c.beyond_90);
    let by_genre = achievements::completion_by_genre(&ctx);
    let rate = |g: Genre| by_genre.iter().find(|(x, _, _)| *x == g).unwrap().1;
    assert!(rate(Genre::Adventure) > rate(Genre::Strategy));
}

#[test]
fn finding_9_robust_across_snapshots() {
    // §8: the tail grows far faster than the 80th percentile.
    let first = Ctx::new(&world().snapshot);
    let second = Ctx::new(&world().second_snapshot);
    let rows = evolution::snapshot_growth(&first, &second);
    let games = &rows[0];
    assert!(games.tail_factor() > games.body_factor());
}

#[test]
fn finding_10_action_overrepresented() {
    // §6.2: the Action genre out-earns its catalog share.
    let ctx = ctx();
    let b = genre::genre_breakdown(&ctx);
    assert!(b.playtime_share(Genre::Action) > b.catalog_share(Genre::Action));
    assert!(b.value_share(Genre::Action) > b.catalog_share(Genre::Action));
}

#[test]
fn finding_11_friends_across_borders() {
    // §4.1: gamers befriend more people outside their city than inside.
    let ctx = ctx();
    let l = social::locality(&ctx);
    assert!(l.intercity_share() > 0.5, "{}", l.intercity_share());
    // But country homophily exists: international < 50%.
    assert!(l.international_share() < 0.5, "{}", l.international_share());
}
