//! Cross-crate integration: the full pipeline the paper ran.
//!
//! The key equivalence: analyzing a snapshot directly must give the same
//! results as serving that snapshot over the emulated Steam Web API,
//! crawling it back over real TCP, and analyzing the crawl.

use std::sync::Arc;

use condensing_steam::analysis::{render, Ctx, Experiment, ReportInput};
use condensing_steam::api::{serve, Crawler, CrawlerConfig, RateLimit};
use condensing_steam::model::codec;
use condensing_steam::synth::{Generator, SynthConfig};

fn small_world_cfg(seed: u64, users: usize) -> SynthConfig {
    let mut cfg = SynthConfig::small(seed);
    cfg.n_users = users;
    cfg.n_products = 400;
    cfg.n_groups = 60;
    cfg
}

#[test]
fn crawl_equals_direct_analysis() {
    let original = Arc::new(Generator::new(small_world_cfg(101, 600)).generate());
    let (server, _service) =
        serve(Arc::clone(&original), "127.0.0.1:0", 2, RateLimit::default()).unwrap();
    let mut crawler = Crawler::new(server.addr(), CrawlerConfig::default());
    let crawled = crawler.crawl(original.collected_at).unwrap();
    crawled.validate().unwrap();

    // Every report rendered from the crawl matches the direct render
    // byte-for-byte (the crawl is lossless for all analyzed quantities).
    let direct_ctx = Ctx::new(&original);
    let crawled_ctx = Ctx::new(&crawled);
    let direct = ReportInput { ctx: &direct_ctx, second: None, panel: None };
    let via_api = ReportInput { ctx: &crawled_ctx, second: None, panel: None };
    for e in [
        Experiment::Table1,
        Experiment::Table3,
        Experiment::Figure1,
        Experiment::Figure4,
        Experiment::Figure6,
        Experiment::Figure8,
        Experiment::Figure10,
        Experiment::Correlations,
        Experiment::Locality,
        Experiment::Aggregates,
    ] {
        assert_eq!(
            render(&direct, e),
            render(&via_api, e),
            "experiment {} differs between direct and crawled analysis",
            e.name()
        );
    }
}

#[test]
fn snapshot_survives_disk_round_trip_at_scale() {
    let world = Generator::new(small_world_cfg(103, 2_000)).generate_world();
    let dir = std::env::temp_dir().join("condensing-steam-it");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("snap.bin");
    codec::write_snapshot(&path, &world.snapshot).unwrap();
    let loaded = codec::read_snapshot(&path).unwrap();
    std::fs::remove_file(&path).ok();

    loaded.validate().unwrap();
    assert_eq!(loaded.n_users(), world.snapshot.n_users());
    assert_eq!(loaded.friendships, world.snapshot.friendships);
    assert_eq!(loaded.ownerships, world.snapshot.ownerships);
    assert_eq!(loaded.catalog, world.snapshot.catalog);

    // The loaded snapshot renders identical reports.
    let a = Ctx::new(&world.snapshot);
    let b = Ctx::new(&loaded);
    let ia = ReportInput { ctx: &a, second: None, panel: None };
    let ib = ReportInput { ctx: &b, second: None, panel: None };
    assert_eq!(render(&ia, Experiment::Table3), render(&ib, Experiment::Table3));
}

#[test]
fn full_report_suite_runs_on_generated_world() {
    let world = Generator::new(small_world_cfg(107, 3_000)).generate_world();
    let ctx = Ctx::new(&world.snapshot);
    let second = Ctx::new(&world.second_snapshot);
    let input = ReportInput { ctx: &ctx, second: Some(&second), panel: Some(&world.panel) };
    for e in Experiment::ALL {
        let text = render(&input, e);
        assert!(text.len() > 30, "{} rendered {} bytes", e.name(), text.len());
    }
}

#[test]
fn deterministic_across_full_pipeline() {
    let w1 = Generator::new(small_world_cfg(109, 1_000)).generate_world();
    let w2 = Generator::new(small_world_cfg(109, 1_000)).generate_world();
    let c1 = Ctx::new(&w1.snapshot);
    let c2 = Ctx::new(&w2.snapshot);
    let i1 = ReportInput { ctx: &c1, second: None, panel: None };
    let i2 = ReportInput { ctx: &c2, second: None, panel: None };
    for e in [Experiment::Table3, Experiment::Figure6, Experiment::Correlations] {
        assert_eq!(render(&i1, e), render(&i2, e));
    }
}

#[test]
fn rate_limited_crawl_still_lossless() {
    let original = Arc::new(Generator::new(small_world_cfg(113, 120)).generate());
    let (server, _service) = serve(
        Arc::clone(&original),
        "127.0.0.1:0",
        2,
        RateLimit { per_key_rps: 500.0, burst: 20.0 },
    )
    .unwrap();
    let config = CrawlerConfig {
        empty_batches_to_stop: 3,
        backoff: condensing_steam::net::Backoff {
            base: std::time::Duration::from_millis(5),
            max: std::time::Duration::from_millis(200),
            attempts: 12,
        },
        ..CrawlerConfig::default()
    };
    let mut crawler = Crawler::new(server.addr(), config);
    let crawled = crawler.crawl(original.collected_at).unwrap();
    assert_eq!(crawled.n_users(), original.n_users());
    assert_eq!(crawled.ownerships, original.ownerships);
}
