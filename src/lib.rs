//! # condensing-steam
//!
//! Facade crate for the reproduction of *"Condensing Steam: Distilling the
//! Diversity of Gamer Behavior"* (O'Neill, Vaziripour, Wu & Zappala,
//! ACM IMC 2016).
//!
//! The workspace implements the paper's entire measurement pipeline against a
//! calibrated synthetic Steam population (the real 108.7 M-account crawl is
//! proprietary — see `DESIGN.md` for the substitution argument):
//!
//! * [`model`] — domain types and snapshot persistence;
//! * [`synth`] — the generative population model (the data substitute);
//! * [`net`] — minimal HTTP + JSON + rate limiting on `std::net`;
//! * [`api`] — the emulated Steam Web API service and the crawler;
//! * [`graph`] — friendship-graph analytics;
//! * [`stats`] — heavy-tail fitting (the `powerlaw`-package reimplementation),
//!   correlations, percentiles;
//! * [`analysis`] — one function per table/figure of the paper.
//!
//! ```no_run
//! use condensing_steam::synth::{Generator, SynthConfig};
//! use condensing_steam::analysis::summary::percentile_table;
//!
//! let snapshot = Generator::new(SynthConfig::small(42)).generate();
//! let table3 = percentile_table(&snapshot);
//! println!("{table3}");
//! ```

pub use steam_analysis as analysis;
pub use steam_api as api;
pub use steam_graph as graph;
pub use steam_model as model;
pub use steam_net as net;
pub use steam_stats as stats;
pub use steam_synth as synth;
